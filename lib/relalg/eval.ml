(* Pre-resolved handles into the run's metrics scope, so the hot path never
   touches the registry's hashtable. *)
type op_metrics = {
  ops : Urm_obs.Metrics.counter;
  rows : Urm_obs.Metrics.counter;
  op_select : Urm_obs.Metrics.counter;
  sel_index : Urm_obs.Metrics.counter;
  sel_scan : Urm_obs.Metrics.counter;
  op_project : Urm_obs.Metrics.counter;
  op_distinct : Urm_obs.Metrics.counter;
  op_product : Urm_obs.Metrics.counter;
  op_join : Urm_obs.Metrics.counter;
  op_aggregate : Urm_obs.Metrics.counter;
  op_groupby : Urm_obs.Metrics.counter;
}

type counters = {
  mutable operators : int;
  mutable rows_produced : int;
  m : op_metrics;
}

let fresh_counters ?(metrics = Urm_obs.Metrics.global) () =
  let m = Urm_obs.Metrics.scope metrics "relalg" in
  let c name = Urm_obs.Metrics.counter m name in
  {
    operators = 0;
    rows_produced = 0;
    m =
      {
        ops = c "operators";
        rows = c "rows_produced";
        op_select = c "op.select";
        sel_index = c "select.index_probe";
        sel_scan = c "select.scan";
        op_project = c "op.project";
        op_distinct = c "op.distinct";
        op_product = c "op.product";
        op_join = c "op.join";
        op_aggregate = c "op.aggregate";
        op_groupby = c "op.groupby";
      };
  }

let rec cols_of cat = function
  | Algebra.Base n -> Relation.cols (Catalog.find cat n)
  | Algebra.Mat r -> Relation.cols r
  | Algebra.Rename (p, e) -> List.map (fun c -> p ^ "#" ^ c) (cols_of cat e)
  | Algebra.Select (_, e) | Algebra.Distinct e -> cols_of cat e
  | Algebra.Project (cs, _) -> cs
  | Algebra.Product (a, b) | Algebra.Join (_, a, b) -> cols_of cat a @ cols_of cat b
  | Algebra.Aggregate (a, _) -> [ Algebra.output_col a ]
  | Algebra.GroupBy (keys, a, _) -> keys @ [ Algebra.output_col a ]

let subset xs set = List.for_all (fun x -> List.mem x set) xs

(* Selection pushdown and join formation.  [push p e] sinks the (atomic)
   conjunct [p] as deep as its column set allows. *)
let optimize cat expr =
  let rec opt e =
    match e with
    | Algebra.Base _ | Algebra.Mat _ -> e
    | Algebra.Rename (p, inner) -> Algebra.Rename (p, opt inner)
    | Algebra.Select (p, inner) ->
      let inner = opt inner in
      List.fold_left (fun acc c -> push c acc) inner (Pred.conjuncts p)
    | Algebra.Project (cs, inner) -> Algebra.Project (cs, opt inner)
    | Algebra.Distinct inner -> Algebra.Distinct (opt inner)
    | Algebra.Product (a, b) -> Algebra.Product (opt a, opt b)
    | Algebra.Join (p, a, b) -> form_join p (opt a) (opt b)
    | Algebra.Aggregate (a, inner) -> Algebra.Aggregate (a, opt inner)
    | Algebra.GroupBy (keys, a, inner) -> Algebra.GroupBy (keys, a, opt inner)
  and push p e =
    let pcols = Pred.columns p in
    match e with
    | Algebra.Product (a, b) ->
      if subset pcols (cols_of cat a) then Algebra.Product (push p a, b)
      else if subset pcols (cols_of cat b) then Algebra.Product (a, push p b)
      else begin
        match p with
        | Pred.CmpCols (Pred.Eq, _, _) -> form_join p a b
        | _ -> Algebra.Select (p, e)
      end
    | Algebra.Join (jp, a, b) ->
      if subset pcols (cols_of cat a) then Algebra.Join (jp, push p a, b)
      else if subset pcols (cols_of cat b) then Algebra.Join (jp, a, push p b)
      else Algebra.Join (Pred.And (jp, p), a, b)
    | Algebra.Select (q, inner) ->
      (* Sink below an existing selection so equality conjuncts can reach a
         base relation's index. *)
      Algebra.Select (q, push p inner)
    | Algebra.Base _ | Algebra.Mat _ | Algebra.Rename _ | Algebra.Project _
    | Algebra.Distinct _ | Algebra.Aggregate _ | Algebra.GroupBy _ ->
      Algebra.Select (p, e)
  (* Join–product associativity: joining A×B with C when the join columns
     touch only B gives A × (B ⋈ C) — keeps Cartesian factors out of the
     join's inputs so they multiply small (already-joined) results instead
     of raw relations. *)
  and form_join p a b =
    let pcols = Pred.columns p in
    let acols = cols_of cat a in
    let local = List.filter (fun c -> List.mem c acols) pcols in
    match (a, b) with
    | Algebra.Product (a1, a2), _ when subset local (cols_of cat a1) ->
      Algebra.Product (a2, form_join p a1 b)
    | Algebra.Product (a1, a2), _ when subset local (cols_of cat a2) ->
      Algebra.Product (a1, form_join p a2 b)
    | _, Algebra.Product (b1, b2)
      when subset (List.filter (fun c -> not (List.mem c local)) pcols) (cols_of cat b1)
      ->
      Algebra.Product (b2, form_join p a b1)
    | _, Algebra.Product (b1, b2)
      when subset (List.filter (fun c -> not (List.mem c local)) pcols) (cols_of cat b2)
      ->
      Algebra.Product (b1, form_join p a b2)
    | _ -> Algebra.Join (p, a, b)
  in
  opt expr

(* Strip a rename prefix from a column name, if present. *)
let strip_prefix prefix col =
  let p = prefix ^ "#" in
  let lp = String.length p in
  if String.length col > lp && String.equal (String.sub col 0 lp) p then
    Some (String.sub col lp (String.length col - lp))
  else None

(* [count ctrs kind rel] accounts one executed operator producing [rel];
   [kind] selects the per-operator-kind counter.  The constant accessor
   closures at the call sites compile to static closures — no allocation. *)
let count ctrs kind rel =
  (match ctrs with
  | Some c ->
    c.operators <- c.operators + 1;
    let n = Relation.cardinality rel in
    c.rows_produced <- c.rows_produced + n;
    Urm_obs.Metrics.incr c.m.ops;
    Urm_obs.Metrics.incr ~by:n c.m.rows;
    Urm_obs.Metrics.incr (kind c.m)
  | None -> ());
  rel

(* Account an access-path decision of a selection (index probe vs scan). *)
let bump ctrs kind =
  match ctrs with Some c -> Urm_obs.Metrics.incr (kind c.m) | None -> ()

(* The same accounting, exposed to the compiled engine ({!Plan}), which has
   row counts rather than result relations in hand. *)
type op_kind =
  | Op_select
  | Op_project
  | Op_distinct
  | Op_product
  | Op_join
  | Op_aggregate
  | Op_groupby

type access_path = Index_probe | Scan

let op_counter m = function
  | Op_select -> m.op_select
  | Op_project -> m.op_project
  | Op_distinct -> m.op_distinct
  | Op_product -> m.op_product
  | Op_join -> m.op_join
  | Op_aggregate -> m.op_aggregate
  | Op_groupby -> m.op_groupby

let record_op ctrs kind ~rows =
  match ctrs with
  | None -> ()
  | Some c ->
    c.operators <- c.operators + 1;
    c.rows_produced <- c.rows_produced + rows;
    Urm_obs.Metrics.incr c.m.ops;
    Urm_obs.Metrics.incr ~by:rows c.m.rows;
    Urm_obs.Metrics.incr (op_counter c.m kind)

let record_access ctrs path =
  bump ctrs (fun m -> match path with Index_probe -> m.sel_index | Scan -> m.sel_scan)

(* One forward pass per aggregate; no per-column value list is ever
   materialised.  Null is the neutral element throughout: Sum folds with
   [Value.add] (which absorbs Null and rejects strings), and Avg follows the
   same contract — nulls are skipped, a string operand raises. *)
let aggregate agg rel =
  let fold col f init =
    let pos = Relation.col_pos rel col in
    Relation.fold (fun acc row -> f acc row.(pos)) init rel
  in
  let extremum col keep =
    fold col
      (fun acc v ->
        if Value.is_null v then acc
        else
          match acc with
          | Some best when not (keep (Value.compare v best)) -> acc
          | _ -> Some v)
      None
    |> Option.value ~default:Value.Null
  in
  let v =
    match agg with
    | Algebra.Count -> Value.Int (Relation.cardinality rel)
    | Algebra.Sum col -> fold col Value.add Value.Null
    | Algebra.Avg col ->
      let sum, n =
        fold col
          (fun (sum, n) v ->
            if Value.is_null v then (sum, n)
            else
              match Value.to_float_opt v with
              | Some f -> (sum +. f, n + 1)
              | None -> invalid_arg "Value.add: string operand")
          (0., 0)
      in
      if n = 0 then Value.Null else Value.Float (sum /. float_of_int n)
    | Algebra.Min col -> extremum col (fun c -> c < 0)
    | Algebra.Max col -> extremum col (fun c -> c > 0)
  in
  Relation.create ~cols:[ Algebra.output_col agg ] [ [| v |] ]

(* Hash grouping: one output row per distinct key combination, aggregating
   the group's rows. *)
let group_by keys agg rel =
  let key_pos = List.map (Relation.col_pos rel) keys in
  let groups : (Value.t array, Value.t array list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  Relation.iter
    (fun row ->
      let key = Array.of_list (List.map (fun i -> row.(i)) key_pos) in
      match Hashtbl.find_opt groups key with
      | Some rows -> rows := row :: !rows
      | None ->
        Hashtbl.add groups key (ref [ row ]);
        order := key :: !order)
    rel;
  let out_cols = keys @ [ Algebra.output_col agg ] in
  let rows =
    List.rev_map
      (fun key ->
        let members = !(Hashtbl.find groups key) in
        let sub = Relation.of_rows ~cols:(Relation.cols rel) (Array.of_list members) in
        let agg_rel = aggregate agg sub in
        Array.append key [| Relation.value agg_rel 0 (Algebra.output_col agg) |])
      !order
  in
  Relation.create ~cols:out_cols rows

(* An indexable selection: σ[col = const] directly over a base relation,
   possibly through a rename. *)
let indexed_select cat pred inner =
  match (pred, inner) with
  | Pred.Cmp (Pred.Eq, col, v), Algebra.Base n when Catalog.indexing_enabled cat ->
    let rows = Catalog.lookup cat n col v in
    Some (Relation.of_rows ~cols:(cols_of cat inner) (Array.of_list rows))
  | Pred.Cmp (Pred.Eq, col, v), Algebra.Rename (p, Algebra.Base n)
    when Catalog.indexing_enabled cat -> begin
    match strip_prefix p col with
    | None -> None
    | Some base_col ->
      let rows = Catalog.lookup cat n base_col v in
      Some (Relation.of_rows ~cols:(cols_of cat inner) (Array.of_list rows))
  end
  | _ -> None

let hash_join ?ctrs cat eval_sub pred a b =
  let ra = eval_sub a and rb = eval_sub b in
  ignore cat;
  let conjs = Pred.conjuncts pred in
  let acols = Relation.cols ra and bcols = Relation.cols rb in
  let pick_key = function
    | Pred.CmpCols (Pred.Eq, x, y) ->
      if List.mem x acols && List.mem y bcols then Some (x, y)
      else if List.mem y acols && List.mem x bcols then Some (y, x)
      else None
    | _ -> None
  in
  let rec find_key = function
    | [] -> None
    | c :: rest -> ( match pick_key c with Some k -> Some (c, k) | None -> find_key rest)
  in
  let joined =
    match find_key conjs with
    | Some (used, (ka, kb)) ->
      let pa = Relation.col_pos ra ka and pb = Relation.col_pos rb kb in
      (* Build the hash table on the smaller input and probe with the larger;
         output rows stay (a-row, b-row) whichever side is built. *)
      let build_a = Relation.cardinality ra <= Relation.cardinality rb in
      let build, bpos, probe, ppos =
        if build_a then (ra, pa, rb, pb) else (rb, pb, ra, pa)
      in
      let table = Hashtbl.create (max 16 (Relation.cardinality build)) in
      Relation.iter
        (fun row ->
          let key = row.(bpos) in
          let prev = try Hashtbl.find table key with Not_found -> [] in
          Hashtbl.replace table key (row :: prev))
        build;
      let out = ref [] in
      Relation.iter
        (fun prow ->
          match Hashtbl.find_opt table prow.(ppos) with
          | None -> ()
          | Some matches ->
            List.iter
              (fun brow ->
                let joined =
                  if build_a then Array.append brow prow
                  else Array.append prow brow
                in
                out := joined :: !out)
              matches)
        probe;
      let rel = Relation.of_rows ~cols:(acols @ bcols) (Array.of_list !out) in
      let remaining = List.filter (fun c -> c != used) conjs in
      if remaining = [] then rel else Pred.eval_on rel (Pred.conj remaining)
    | None ->
      let prod = Relation.product ra rb in
      Pred.eval_on prod pred
  in
  count ctrs (fun m -> m.op_join) joined

let optimize_pass = optimize

let eval ?ctrs ?(optimize = true) cat expr =
  let expr = if optimize then optimize_pass cat expr else expr in
  let rec go e =
    match e with
    | Algebra.Base n -> Catalog.find cat n
    | Algebra.Mat r -> r
    | Algebra.Rename (p, inner) -> Relation.rename_prefix (go inner) p
    | Algebra.Select (p, inner) -> begin
      match indexed_select cat p inner with
      | Some rel ->
        bump ctrs (fun m -> m.sel_index);
        count ctrs (fun m -> m.op_select) rel
      | None ->
        let r = go inner in
        bump ctrs (fun m -> m.sel_scan);
        count ctrs (fun m -> m.op_select) (Pred.eval_on r p)
    end
    | Algebra.Project (cs, inner) ->
      count ctrs (fun m -> m.op_project) (Relation.project (go inner) cs)
    | Algebra.Distinct (Algebra.Project (cs, inner)) when optimize ->
      count ctrs (fun m -> m.op_distinct) (distinct_project cs inner)
    | Algebra.Distinct inner ->
      count ctrs (fun m -> m.op_distinct) (Relation.distinct (go inner))
    | Algebra.Product (a, b) ->
      count ctrs (fun m -> m.op_product) (Relation.product (go a) (go b))
    | Algebra.Join (p, a, b) -> hash_join ?ctrs cat go p a b
    | Algebra.Aggregate (a, inner) ->
      count ctrs (fun m -> m.op_aggregate) (aggregate a (go inner))
    | Algebra.GroupBy (keys, a, inner) ->
      count ctrs (fun m -> m.op_groupby) (group_by keys a (go inner))
  (* Set-semantics projection over a Cartesian product factorises:
     δπ_C(A × B) = π_C(δπ_{C∩A}(A) × δπ_{C∩B}(B)), and a factor carrying no
     projected column only contributes an emptiness test.  This keeps the
     distinct result small without ever materialising the full product. *)
  and distinct_project cs e =
    match e with
    | Algebra.Product (a, b) -> begin
      let acols = cols_of cat a in
      let ca = List.filter (fun c -> List.mem c acols) cs in
      let cb = List.filter (fun c -> not (List.mem c ca)) cs in
      match (ca, cb) with
      | [], [] -> Relation.distinct (Relation.project (go e) cs)
      | [], _ ->
        if nonempty a then distinct_project cb b else Relation.empty ~cols:cs
      | _, [] ->
        if nonempty b then distinct_project ca a else Relation.empty ~cols:cs
      | _ ->
        let ra = distinct_project ca a and rb = distinct_project cb b in
        Relation.project (Relation.product ra rb) cs
    end
    | _ -> Relation.distinct (Relation.project (go e) cs)
  (* Emptiness of a product needs no materialisation of the product. *)
  and nonempty e =
    match e with
    | Algebra.Product (a, b) -> nonempty a && nonempty b
    | Algebra.Rename (_, inner) -> nonempty inner
    | Algebra.Base n -> not (Relation.is_empty (Catalog.find cat n))
    | Algebra.Mat r -> not (Relation.is_empty r)
    | _ -> not (Relation.is_empty (go e))
  in
  go expr

let rec nonempty ?ctrs cat e =
  match e with
  | Algebra.Product (a, b) -> nonempty ?ctrs cat a && nonempty ?ctrs cat b
  | Algebra.Rename (_, inner) -> nonempty ?ctrs cat inner
  | Algebra.Base n -> not (Relation.is_empty (Catalog.find cat n))
  | Algebra.Mat r -> not (Relation.is_empty r)
  | _ -> not (Relation.is_empty (eval ?ctrs cat e))
