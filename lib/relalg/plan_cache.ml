(* A mutex-protected LRU cache of compiled plans, keyed on the expression
   fingerprint (base relations are plan parameters, so one cached plan
   serves every execution of that shape against the environment's catalog).

   The paper's algorithms evaluate h reformulated queries per target query
   that share a handful of shapes; caching turns h compilations into one.
   Expressions embedding [Algebra.Mat] nodes must bypass the cache (their
   fingerprints name ephemeral relation ids) — [Ctx] enforces that.

   Compilation runs outside the lock: two domains racing on the same fresh
   key may both compile, and the second insert wins — wasted work, never
   wrong answers. *)

type entry = {
  key : string;
  plan : Plan.t;
  mutable prev : entry option;
  mutable next : entry option;
}

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  mutable head : entry option;  (* most recently used *)
  mutable tail : entry option;  (* least recently used *)
  lock : Mutex.t;
  c_hit : Urm_obs.Metrics.counter;
  c_miss : Urm_obs.Metrics.counter;
  c_evict : Urm_obs.Metrics.counter;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(metrics = Urm_obs.Metrics.global) ?(capacity = 256) () =
  if capacity <= 0 then invalid_arg "Plan_cache.create: capacity must be positive";
  let m = Urm_obs.Metrics.scope metrics "plan_cache" in
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    lock = Mutex.create ();
    c_hit = Urm_obs.Metrics.counter m "hit";
    c_miss = Urm_obs.Metrics.counter m "miss";
    c_evict = Urm_obs.Metrics.counter m "evict";
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Doubly-linked recency list maintenance; all callers hold the lock. *)

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let touch t e =
  if t.head != Some e then begin
    unlink t e;
    push_front t e
  end

let evict_over_capacity t =
  while Hashtbl.length t.table > t.capacity do
    match t.tail with
    | None -> assert false
    | Some lru ->
      unlink t lru;
      Hashtbl.remove t.table lru.key;
      t.evictions <- t.evictions + 1;
      Urm_obs.Metrics.incr t.c_evict
  done

let find_or_add t key compile =
  let cached =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some e ->
          touch t e;
          t.hits <- t.hits + 1;
          Urm_obs.Metrics.incr t.c_hit;
          Some e.plan
        | None ->
          t.misses <- t.misses + 1;
          Urm_obs.Metrics.incr t.c_miss;
          None)
  in
  match cached with
  | Some plan -> plan
  | None ->
    let plan = compile () in
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some e ->
          (* Lost a compile race; keep the incumbent. *)
          touch t e;
          e.plan
        | None ->
          let e = { key; plan; prev = None; next = None } in
          Hashtbl.replace t.table key e;
          push_front t e;
          evict_over_capacity t;
          plan)

let stats t =
  locked t (fun () -> (t.hits, t.misses, t.evictions))

let length t = locked t (fun () -> Hashtbl.length t.table)
let capacity t = t.capacity
