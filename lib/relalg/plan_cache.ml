(* An LRU cache of compiled plans, keyed on the expression fingerprint
   (base relations are plan parameters, so one cached plan serves every
   execution of that shape against the environment's catalog).  The
   recency/eviction machinery is {!Urm_util.Lru}; this module adds the
   plan-cache statistics and the compile-race discipline.

   The paper's algorithms evaluate h reformulated queries per target query
   that share a handful of shapes; caching turns h compilations into one.
   Expressions embedding [Algebra.Mat] nodes must bypass the cache (their
   fingerprints name ephemeral relation ids) — [Ctx] enforces that.

   Compilation runs outside the lock: two domains racing on the same fresh
   key may both compile, and [Lru.put_if_absent] keeps the incumbent — the
   loser adopts the winner's plan; wasted work, never wrong answers. *)

module Lru = Urm_util.Lru

type t = {
  lru : Plan.t Lru.t;
  c_hit : Urm_obs.Metrics.counter;
  c_miss : Urm_obs.Metrics.counter;
  c_evict : Urm_obs.Metrics.counter;
  (* Per-cache numbers, separate from the (possibly shared) metrics
     registry: {!stats} must report this cache alone. *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}

let create ?(metrics = Urm_obs.Metrics.global) ?(capacity = 256) () =
  if capacity <= 0 then invalid_arg "Plan_cache.create: capacity must be positive";
  let m = Urm_obs.Metrics.scope metrics "plan_cache" in
  {
    lru = Lru.create ~capacity;
    c_hit = Urm_obs.Metrics.counter m "hit";
    c_miss = Urm_obs.Metrics.counter m "miss";
    c_evict = Urm_obs.Metrics.counter m "evict";
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let find_or_add t key compile =
  match Lru.find t.lru key with
  | Some plan ->
    Atomic.incr t.hits;
    Urm_obs.Metrics.incr t.c_hit;
    plan
  | None ->
    Atomic.incr t.misses;
    Urm_obs.Metrics.incr t.c_miss;
    let plan = compile () in
    let winner, _inserted, evicted = Lru.put_if_absent t.lru key plan in
    let n = List.length evicted in
    if n > 0 then begin
      ignore (Atomic.fetch_and_add t.evictions n);
      Urm_obs.Metrics.incr ~by:n t.c_evict
    end;
    winner

let stats t = (Atomic.get t.hits, Atomic.get t.misses, Atomic.get t.evictions)
let length t = Lru.length t.lru
let capacity t = Lru.capacity t.lru
