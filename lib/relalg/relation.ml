type t = {
  id : int;
  cols : string array;
  positions : (string, int) Hashtbl.t;
  rows : Value.t array array;
  vecs : Column.vec array option Atomic.t;
      (* Lazily-built typed columns (see [columns]); [Atomic] so concurrent
         first columnisations publish safely — both build the same vectors
         and the last store wins. *)
}

(* Atomic so relations allocated by concurrent service workers still get
   process-unique ids (the o-sharing memo table keys on them). *)
let next_id =
  let counter = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add counter 1 + 1

let positions_of cols =
  let h = Hashtbl.create (Array.length cols) in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem h c then invalid_arg ("Relation: duplicate column " ^ c);
      Hashtbl.add h c i)
    cols;
  h

let of_rows ~cols rows =
  let cols = Array.of_list cols in
  let arity = Array.length cols in
  Array.iter
    (fun r ->
      if Array.length r <> arity then invalid_arg "Relation: row arity mismatch")
    rows;
  {
    id = next_id ();
    cols;
    positions = positions_of cols;
    rows;
    vecs = Atomic.make None;
  }

let create ~cols rows = of_rows ~cols (Array.of_list rows)
let empty ~cols = of_rows ~cols [||]
let cardinality t = Array.length t.rows
let arity t = Array.length t.cols
let is_empty t = cardinality t = 0
let cols t = Array.to_list t.cols
let col_pos t name = Hashtbl.find t.positions name
let mem_col t name = Hashtbl.mem t.positions name
let value t row col = t.rows.(row).(col_pos t col)

let columns t =
  match Atomic.get t.vecs with
  | Some v -> v
  | None ->
    let v = Column.of_rows ~arity:(arity t) t.rows in
    Atomic.set t.vecs (Some v);
    v

let filter t f =
  let rows = Array.of_seq (Seq.filter f (Array.to_seq t.rows)) in
  {
    id = next_id ();
    cols = t.cols;
    positions = t.positions;
    rows;
    vecs = Atomic.make None;
  }

let project t names =
  let idx = List.map (col_pos t) names in
  let idx = Array.of_list idx in
  let rows = Array.map (fun row -> Array.map (fun i -> row.(i)) idx) t.rows in
  of_rows ~cols:names rows

let distinct t =
  let seen = Hashtbl.create (max 16 (cardinality t)) in
  let keep = ref [] in
  Array.iter
    (fun row ->
      if not (Hashtbl.mem seen row) then begin
        Hashtbl.add seen row ();
        keep := row :: !keep
      end)
    t.rows;
  of_rows ~cols:(cols t) (Array.of_list (List.rev !keep))

let product a b =
  let cols = Array.append a.cols b.cols in
  let na = Array.length a.rows and nb = Array.length b.rows in
  let rows = Array.make (na * nb) [||] in
  let k = ref 0 in
  Array.iter
    (fun ra ->
      Array.iter
        (fun rb ->
          rows.(!k) <- Array.append ra rb;
          incr k)
        b.rows)
    a.rows;
  { id = next_id (); cols; positions = positions_of cols; rows; vecs = Atomic.make None }

let rename t f =
  let cols = Array.map f t.cols in
  (* Rows are shared, so the columnised form is too. *)
  { id = next_id (); cols; positions = positions_of cols; rows = t.rows; vecs = t.vecs }

let rename_prefix t p = rename t (fun c -> p ^ "#" ^ c)
let iter f t = Array.iter f t.rows
let fold f init t = Array.fold_left f init t.rows

let equal_contents a b =
  a.cols = b.cols
  && cardinality a = cardinality b
  &&
  let count rel =
    let h = Hashtbl.create (cardinality rel) in
    Array.iter
      (fun row ->
        let c = try Hashtbl.find h row with Not_found -> 0 in
        Hashtbl.replace h row (c + 1))
      rel.rows;
    h
  in
  let ha = count a and hb = count b in
  Hashtbl.fold
    (fun row c ok -> ok && (try Hashtbl.find hb row = c with Not_found -> false))
    ha true

let pp ?(max_rows = 10) ppf t =
  Format.fprintf ppf "@[<v>%s (%d rows)" (String.concat " | " (cols t))
    (cardinality t);
  let n = min max_rows (cardinality t) in
  for i = 0 to n - 1 do
    Format.fprintf ppf "@,%s"
      (String.concat " | "
         (Array.to_list (Array.map Value.to_string t.rows.(i))))
  done;
  if cardinality t > n then Format.fprintf ppf "@,… (%d more)" (cardinality t - n);
  Format.fprintf ppf "@]"
