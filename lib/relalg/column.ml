(* Typed column vectors and row batches — the data plane of the vectorized
   engine.

   A [vec] is one column in its tightest available representation: unboxed
   [int array] / [float array] with an optional null mask, interned strings
   as dictionary ids, or a boxed [Value.t array] when the column mixes
   payload types (the catalogs here are untyped, so e.g. a float column
   sampled from mixed generators keeps Int and Float values distinct — the
   boxed fallback preserves [Value.t] identity exactly).

   A [batch] is a slice of up to {!batch_size} rows over shared column
   vectors plus a selection vector of absolute row indices: filters narrow
   the selection without copying any column data, and projections remap the
   [vecs] array without touching rows at all. *)

type vec =
  | VInt of int array * Bytes.t option
  | VFloat of float array * Bytes.t option
  | VStr of int array * string array  (* dictionary ids; -1 encodes Null *)
  | VVal of Value.t array
  | VConst of Value.t

type batch = { vecs : vec array; sel : int array; n : int }

(* The weight-vector channel of the factorized multi-mapping executor: a
   batch annotated with the Pr(mᵢ) masses of every mapping whose
   reformulation contains the e-unit that produced it.  The vector is
   constant across one plan execution (it describes the producing e-unit,
   not individual rows) and is shared, not copied, per batch. *)
type weighted = { batch : batch; weights : float array }

let batch_size = 1024

(* A set byte marks a null row; the mask is absent when no row is null. *)
let null_at mask i = Bytes.unsafe_get mask i <> '\000'

let get v i =
  match v with
  | VInt (a, None) -> Value.Int a.(i)
  | VInt (a, Some m) -> if null_at m i then Value.Null else Value.Int a.(i)
  | VFloat (a, None) -> Value.Float a.(i)
  | VFloat (a, Some m) -> if null_at m i then Value.Null else Value.Float a.(i)
  | VStr (ids, dict) ->
    let id = ids.(i) in
    if id < 0 then Value.Null else Value.Str dict.(id)
  | VVal a -> a.(i)
  | VConst c -> c

(* [getter v] specialises {!get} once per vector, for per-batch loops. *)
let getter v =
  match v with
  | VInt (a, None) -> fun i -> Value.Int a.(i)
  | VInt (a, Some m) -> fun i -> if null_at m i then Value.Null else Value.Int a.(i)
  | VFloat (a, None) -> fun i -> Value.Float a.(i)
  | VFloat (a, Some m) ->
    fun i -> if null_at m i then Value.Null else Value.Float a.(i)
  | VStr (ids, dict) ->
    fun i ->
      let id = ids.(i) in
      if id < 0 then Value.Null else Value.Str dict.(id)
  | VVal a -> fun i -> a.(i)
  | VConst c -> fun _ -> c

let row b k =
  let i = b.sel.(k) in
  Array.map (fun v -> get v i) b.vecs

(* ------------------------------------------------------------------ *)
(* Columnising a row store.  Each column independently picks the tightest
   representation that loses no [Value.t] identity. *)

let of_rows_col rows col =
  let n = Array.length rows in
  let ints = ref true and floats = ref true and strs = ref true in
  let nulls = ref false in
  for i = 0 to n - 1 do
    match rows.(i).(col) with
    | Value.Null -> nulls := true
    | Value.Int _ ->
      floats := false;
      strs := false
    | Value.Float _ ->
      ints := false;
      strs := false
    | Value.Str _ ->
      ints := false;
      floats := false
  done;
  if !ints then begin
    let a = Array.make n 0 in
    let mask = if !nulls then Some (Bytes.make n '\000') else None in
    Array.iteri
      (fun i r ->
        match r.(col) with
        | Value.Int x -> a.(i) <- x
        | _ -> Bytes.set (Option.get mask) i '\001')
      rows;
    VInt (a, mask)
  end
  else if !floats then begin
    let a = Array.make n 0. in
    let mask = if !nulls then Some (Bytes.make n '\000') else None in
    Array.iteri
      (fun i r ->
        match r.(col) with
        | Value.Float x -> a.(i) <- x
        | _ -> Bytes.set (Option.get mask) i '\001')
      rows;
    VFloat (a, mask)
  end
  else if !strs then begin
    let ids = Array.make n (-1) in
    let intern = Hashtbl.create 64 in
    let dict = ref [] and next = ref 0 in
    Array.iteri
      (fun i r ->
        match r.(col) with
        | Value.Str s ->
          ids.(i) <-
            (match Hashtbl.find_opt intern s with
            | Some id -> id
            | None ->
              let id = !next in
              incr next;
              Hashtbl.add intern s id;
              dict := s :: !dict;
              id)
        | _ -> ())
      rows;
    VStr (ids, Array.of_list (List.rev !dict))
  end
  else VVal (Array.map (fun r -> r.(col)) rows)

let of_rows ~arity rows = Array.init arity (fun c -> of_rows_col rows c)

(* ------------------------------------------------------------------ *)
(* Building batches from row producers (pipeline breakers and the
   row-iterator bridge).  Rows are transposed boxed — the producer already
   materialised [Value.t] arrays, so typed re-classification would only pay
   off for consumers that re-scan many times, which batches never are. *)

let batch_of_rows rows n =
  let arity = if n = 0 then 0 else Array.length rows.(0) in
  let vecs =
    Array.init arity (fun c -> VVal (Array.init n (fun i -> rows.(i).(c))))
  in
  { vecs; sel = Array.init n (fun i -> i); n }

(* [batching_sink bsink] = [(push, flush)]: [push row] buffers and emits a
   full batch every {!batch_size} rows; [flush ()] emits the remainder. *)
let batching_sink bsink =
  let buf = Array.make batch_size [||] in
  let k = ref 0 in
  let emit () =
    bsink (batch_of_rows buf !k);
    k := 0
  in
  let push row =
    buf.(!k) <- row;
    incr k;
    if !k = batch_size then emit ()
  in
  let flush () = if !k > 0 then emit () in
  (push, flush)

(* [iter_chunks n ~f] covers [0, n) with identity selections of at most
   {!batch_size} rows: [f sel len] with [sel.(0..len-1)] consecutive. *)
let iter_chunks n ~f =
  let off = ref 0 in
  while !off < n do
    let base = !off in
    let len = min batch_size (n - base) in
    f (Array.init len (fun k -> base + k)) len;
    off := base + len
  done
