(** Relational-algebra expressions.

    These trees represent both target queries (over target schemas) and the
    source queries obtained by reformulation; leaves are either named
    relations ([Base]), alias instantiations ([Rename]) or materialized
    intermediate results ([Mat], used by o-sharing's e-units). *)

type agg =
  | Count
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string

type t =
  | Base of string  (** stored relation, looked up in the catalog *)
  | Mat of Relation.t  (** already-computed intermediate result *)
  | Rename of string * t
      (** [Rename (p, e)]: prefix every column of [e] with ["p#"]; gives a
          self-joined relation instance its own column namespace *)
  | Select of Pred.t * t
  | Project of string list * t
  | Distinct of t
  | Product of t * t
  | Join of Pred.t * t * t
  | Aggregate of agg * t
  | GroupBy of string list * agg * t
      (** [GroupBy (keys, agg, e)]: one output row per distinct key
          combination, with columns [keys @ [output_col agg]] *)

(** Number of operator nodes ([Select]/[Project]/[Distinct]/[Product]/
    [Join]/[Aggregate]/[GroupBy]); leaves and [Rename] are free. *)
val size : t -> int

(** Canonical string form; two expressions are the same source query iff
    their fingerprints are equal ([Mat] nodes print their relation id).
    This is what e-basic deduplicates on. *)
val fingerprint : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** [canonical t] rewrites every commutative conjunction ([Pred.And]
    spines in [Select]/[Join] predicates) into a sorted normal form, so
    that two expressions differing only in conjunct arrangement become
    structurally equal.  Column lists and product order are left alone —
    they determine the result header and row order.  The rewrite preserves
    the result as a set of rows (filter predicates do not affect row
    order), which is what makes it sound as a {!Plan_cache} key. *)
val canonical : t -> t

(** [canonical_fingerprint t] = [fingerprint (canonical t)] — the plan
    cache's key, under which conjunct-permuted reformulations of the same
    e-unit share one compiled plan. *)
val canonical_fingerprint : t -> string

(** Immediate subexpressions, left to right. *)
val children : t -> t list

(** All subexpressions including [t] itself (pre-order). *)
val subexpressions : t -> t list

(** Whether the expression embeds a materialised intermediate ([Mat]).
    Such expressions are one-shot: their fingerprint is only stable for the
    lifetime of the embedded relation, so plan caches must not key on it. *)
val contains_mat : t -> bool

(** [output_col agg] is the column name carried by an aggregate's one-row
    result (e.g. ["count"], ["sum(x)"]). *)
val output_col : agg -> string

val pp : Format.formatter -> t -> unit
val to_string : t -> string
