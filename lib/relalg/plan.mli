(** Physical query plans: push-based closure pipelines over pre-resolved
    integer column positions.

    {!Compile} lowers an optimised {!Algebra.t} once into a plan; the plan
    is then executed many times (once per mapping in the paper's
    algorithms).  Plans are immutable and re-entrant — all per-execution
    state (hash tables, buffers, aggregate accumulators) is allocated
    inside {!execute} — so one plan may be executed concurrently from
    several domains.

    Every operator carries two equivalent streams: a one-row-at-a-time
    boxed stream ([iter], the [Compiled] engine) and a {!Column.batch}
    stream ([biter], the [Vectorized] engine) that runs predicates as
    tight loops over typed vectors and carries selection vectors forward
    without copying.  Both produce identical rows in identical order, so
    float accumulations downstream are bit-identical across engines.

    Base relations are parameters resolved through the catalog at execution
    time, which is what makes a plan reusable across the [h] reformulated
    queries of one shape and lets {!Plan_cache} share it. *)

type env = { cat : Catalog.t; ctrs : Eval.counters option }
type sink = Value.t array -> unit
type bsink = Column.batch -> unit

(** One operator of a plan: a header plus push-based row and batch streams.
    Exposed concretely for {!Compile}; other clients should treat pipes as
    opaque and use {!t}. *)
type pipe = {
  cols : string list;
  iter : env -> sink -> unit;
  biter : env -> bsink -> unit;
  stored : (env -> Relation.t) option;
  check : env -> bool;
  desc : string;
}

(** {2 Constructors (used by {!Compile})} *)

(** Stored relation, looked up in the catalog at execution time; batches
    stream straight off the relation's memoised typed columns. *)
val scan : name:string -> cols:string list -> pipe

(** Already-materialised intermediate ([Algebra.Mat]). *)
val const : Relation.t -> pipe

(** σ[col = value] over a stored relation via the catalog hash index
    (falls back to a scan inside {!Catalog.lookup} when indexing is
    disabled). *)
val index_probe : name:string -> col:string -> value:Value.t -> cols:string list -> pipe

(** Fused selection: streams the parent's rows through a compiled
    predicate, never materialising.  [bpred] is the batch form — given a
    batch it returns a test over absolute row indices (a tight loop over
    typed vectors when {!Compile} can specialise it); when absent it is
    derived from [pred]. *)
val filter :
  ?bpred:(Column.batch -> int -> bool) -> pred:(Value.t array -> bool) -> pipe -> pipe

(** Fused projection onto the given positions of the input row; batches
    remap the vector array without touching row data. *)
val project : positions:int array -> cols:string list -> pipe -> pipe

(** Header-only relabelling (a rename is free at execution time). *)
val with_cols : string list -> pipe -> pipe

(** Hash-based duplicate elimination, first-appearance order. *)
val distinct : pipe -> pipe

(** [hash_join ~build_left ~lkey ~rkey ~residual l r]: equi-join with the
    hash table built on [l] when [build_left] (the cost model picks the
    estimated-smaller side) and probed with the other side.  Output columns
    are always [l.cols @ r.cols].  [residual] filters the combined row.
    The build table is memoised across executions and shared by both
    engines. *)
val hash_join :
  build_left:bool ->
  lkey:int ->
  rkey:int ->
  residual:(Value.t array -> bool) option ->
  pipe ->
  pipe ->
  pipe

(** Nested-loop Cartesian product; the right side is materialised once
    (columnised once under the batch stream — left rows broadcast as
    constant vectors over the right chunks). *)
val nl_product : pipe -> pipe -> pipe

(** [guard gs inner] is [inner] gated on every guard being non-empty — the
    emptiness tests of the distinct-projection factorisation. *)
val guard : pipe list -> pipe -> pipe

(** Single-pass aggregate state over a pre-resolved column position. *)
type agg_spec =
  | Count_spec
  | Sum_spec of int
  | Avg_spec of int
  | Min_spec of int
  | Max_spec of int

(** One-row aggregate ([col] is the output column name). *)
val aggregate : spec:agg_spec -> col:string -> pipe -> pipe

(** Hash grouping (first-appearance output order), folding each group's
    aggregate as rows stream by. *)
val group_by : key_pos:int array -> spec:agg_spec -> cols:string list -> pipe -> pipe

(** {2 Complete plans} *)

type t

val of_pipe : header:string list -> pipe -> t

(** The header {!execute}'s result carries. *)
val header : t -> string list

(** One-line physical-operator tree, e.g.
    ["hash_join[build=left](scan(S), σ(scan(R)))"] — unit tests assert on
    build-side choices through this. *)
val describe : t -> string

(** [execute ?ctrs cat t] runs the plan against [cat] through the row
    stream, accounting operator executions into [ctrs] exactly like the
    interpreted evaluator. *)
val execute : ?ctrs:Eval.counters -> Catalog.t -> t -> Relation.t

(** [execute_batches ?ctrs cat t] like {!execute} but through the batch
    stream — same rows in the same order. *)
val execute_batches : ?ctrs:Eval.counters -> Catalog.t -> t -> Relation.t

(** [iter_rows ?ctrs cat t ~f] streams the result rows (in {!execute}'s row
    order, with {!header}'s columns) without materialising a relation.
    Emitted arrays are never mutated afterwards; consumers may retain them. *)
val iter_rows :
  ?ctrs:Eval.counters -> Catalog.t -> t -> f:(Value.t array -> unit) -> unit

(** [iter_batches ?ctrs cat t ~f] streams the result as {!Column.batch}es
    (same rows and order as {!iter_rows}).  A batch is only valid during
    the callback — consumers must not retain its selection array. *)
val iter_batches :
  ?ctrs:Eval.counters -> Catalog.t -> t -> f:(Column.batch -> unit) -> unit

(** [iter_wbatches ?ctrs cat t ~weights ~f] the batch stream of
    {!iter_batches} with every batch wrapped in {!Column.weighted},
    carrying the producing e-unit's mapping-mass vector.  One execution
    serves every mapping in [weights] — the factorized multi-mapping
    executor's entry point. *)
val iter_wbatches :
  ?ctrs:Eval.counters ->
  Catalog.t ->
  t ->
  weights:float array ->
  f:(Column.weighted -> unit) ->
  unit

(** Short-circuiting emptiness test (stops at the first row) with
    accounting suppressed: probes leave [ctrs] untouched. *)
val nonempty : ?ctrs:Eval.counters -> Catalog.t -> t -> bool
