(** Compiling {!Algebra.t} expressions to physical {!Plan.t}s.

    Runs the shared logical optimiser ({!Eval.optimize}), then lowers the
    tree into a push-based closure pipeline with all physical decisions
    made once: column names resolved to integer positions, σ/π fused into
    their producers, a cost-based greedy left-deep join order driven by
    {!Stats_est}, the hash-join build on the estimated-smaller input, and
    single-pass aggregates/group-by.  See DESIGN.md "Compiled execution &
    plan cache". *)

(** The execution-engine knob carried by [Urm.Ctx].  [Interpreted] is the
    tree-walking evaluator; [Compiled] executes plans one boxed row at a
    time; [Vectorized] (the default) executes the same plans through
    {!Column.batch}es — typed vectors and selection vectors — producing
    bit-identical results. *)
type engine = Interpreted | Compiled | Vectorized

val engine_name : engine -> string

(** Parses ["interpreted"] / ["compiled"] / ["vectorized"] (the CLI's
    [--engine] values). *)
val engine_of_string : string -> (engine, string) result

(** A compilation environment: one per catalog.  Caches the column
    statistics ({!Stats_est.build} runs once, lazily, under a mutex) and
    carries the [relalg/compile.*] observability handles
    ([compile.plans], [compile.stats_builds], [compile.seconds]). *)
type env

val create_env : ?metrics:Urm_obs.Metrics.t -> Catalog.t -> env

(** [compile env e] optimises and lowers [e].  The resulting plan reads
    base relations through the catalog at execution time, so it can be
    executed repeatedly (and concurrently).  Raises [Not_found] when [e]
    references unknown relations or columns, like the interpreter. *)
val compile : env -> Algebra.t -> Plan.t
