type t = {
  tables : (string, Relation.t) Hashtbl.t;
  indexes : (string * string, (Value.t, int list) Hashtbl.t) Hashtbl.t;
  mutable use_indexes : bool;
}

let create () =
  { tables = Hashtbl.create 16; indexes = Hashtbl.create 16; use_indexes = true }

let add t name rel =
  Hashtbl.replace t.tables name rel;
  (* Any cached indexes for a replaced relation are stale. *)
  Hashtbl.iter
    (fun (r, c) _ -> if String.equal r name then Hashtbl.remove t.indexes (r, c))
    (Hashtbl.copy t.indexes)

(* Copy-on-write derivation: the new catalog owns fresh binding tables but
   shares untouched [Relation.t]s *and* their already-built column indexes
   (index tables are write-once after construction, so sharing is safe);
   only the replaced relations lose their indexes and rebuild on demand.
   The originating catalog is not modified — snapshots pinned to it keep
   reading the old versions. *)
let cow t replacements =
  let replaced name = List.exists (fun (n, _) -> String.equal n name) replacements in
  let fresh =
    {
      tables = Hashtbl.copy t.tables;
      indexes = Hashtbl.create (Hashtbl.length t.indexes);
      use_indexes = t.use_indexes;
    }
  in
  Hashtbl.iter
    (fun ((r, _) as key) idx ->
      if not (replaced r) then Hashtbl.replace fresh.indexes key idx)
    t.indexes;
  List.iter
    (fun (name, rel) ->
      if not (Hashtbl.mem t.tables name) then
        invalid_arg ("Catalog.cow: unknown relation " ^ name);
      Hashtbl.replace fresh.tables name rel)
    replacements;
  fresh

let find t name = Hashtbl.find t.tables name
let mem t name = Hashtbl.mem t.tables name

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tables [] |> List.sort String.compare

let total_rows t =
  Hashtbl.fold (fun _ rel acc -> acc + Relation.cardinality rel) t.tables 0

let index t rname col =
  match Hashtbl.find_opt t.indexes (rname, col) with
  | Some idx -> idx
  | None ->
    let rel = find t rname in
    let pos = Relation.col_pos rel col in
    let idx = Hashtbl.create (max 16 (Relation.cardinality rel)) in
    let i = ref 0 in
    Relation.iter
      (fun row ->
        let v = row.(pos) in
        let prev = try Hashtbl.find idx v with Not_found -> [] in
        Hashtbl.replace idx v (!i :: prev);
        incr i)
      rel;
    Hashtbl.replace t.indexes (rname, col) idx;
    idx

let build_indexes t =
  Hashtbl.iter
    (fun name rel ->
      Array.iter (fun col -> ignore (index t name col)) rel.Relation.cols)
    t.tables

let lookup t rname col v =
  let rel = find t rname in
  if t.use_indexes then begin
    let idx = index t rname col in
    let rows = try Hashtbl.find idx v with Not_found -> [] in
    List.rev_map (fun i -> rel.Relation.rows.(i)) rows
  end
  else begin
    let pos = Relation.col_pos rel col in
    Relation.fold
      (fun acc row -> if Value.equal row.(pos) v then row :: acc else acc)
      [] rel
  end

let set_indexing t b = t.use_indexes <- b
let indexing_enabled t = t.use_indexes
