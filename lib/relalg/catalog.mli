(** A catalog binds relation names to stored relations and owns their hash
    indexes.  One catalog instance plays the role of the paper's source
    instance [D]. *)

type t

val create : unit -> t
val add : t -> string -> Relation.t -> unit

(** [cow t replacements] a copy-on-write derived catalog: same bindings as
    [t] except each [(name, rel)] of [replacements] rebinds [name] to
    [rel].  Untouched relations and their already-built indexes are shared
    with [t] (index tables are write-once after construction); replaced
    relations start index-less and rebuild on demand.  [t] itself is not
    modified, so readers pinned to it keep a consistent snapshot.  Raises
    [Invalid_argument] when a replacement names an unknown relation. *)
val cow : t -> (string * Relation.t) list -> t

(** [find t name] raises [Not_found] for unknown relations. *)
val find : t -> string -> Relation.t

val mem : t -> string -> bool
val names : t -> string list

(** Total stored rows across all relations — the "database size" axis of the
    paper's Figures 10(b)/11(b). *)
val total_rows : t -> int

(** [index t rel col] is the hash index value → row indexes for a stored
    relation's column, built lazily and cached.  Raises [Not_found] for an
    unknown relation or column. *)
val index : t -> string -> string -> (Value.t, int list) Hashtbl.t

(** [build_indexes t] eagerly builds the index of every column of every
    stored relation.  A catalog is not safe for concurrent lazy index
    construction (see {!index}); the query service calls this once at
    session-open time so that evaluation workers only ever read. *)
val build_indexes : t -> unit

(** [lookup t rel col v] rows of [rel] whose [col] equals [v], via the
    index. *)
val lookup : t -> string -> string -> Value.t -> Value.t array list

(** [set_indexing t false] disables index use ({!lookup} then scans); used by
    the index ablation bench. *)
val set_indexing : t -> bool -> unit

val indexing_enabled : t -> bool
