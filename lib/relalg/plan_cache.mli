(** A mutex-protected LRU cache of compiled {!Plan.t}s.

    Keys are {!Algebra.fingerprint}s of unoptimised expressions; base
    relations are plan parameters, so one cached plan serves every
    execution of that query shape.  Expressions embedding [Algebra.Mat]
    nodes must not be cached (their fingerprints name ephemeral relation
    ids); [Urm.Ctx] bypasses the cache for them.

    Counters [plan_cache/{hit,miss,evict}] are registered in the given
    metrics registry; {!stats} exposes the same numbers directly (used by
    the service's stats section, which reports per-session caches). *)

type t

(** [create ?metrics ?capacity ()] — [capacity] defaults to 256 plans and
    must be positive. *)
val create : ?metrics:Urm_obs.Metrics.t -> ?capacity:int -> unit -> t

(** [find_or_add t key compile] returns the cached plan for [key] or runs
    [compile] and caches its result.  [compile] runs outside the lock:
    concurrent misses on one key may compile twice; the first insert wins. *)
val find_or_add : t -> string -> (unit -> Plan.t) -> Plan.t

(** [(hits, misses, evictions)] since creation. *)
val stats : t -> int * int * int

val length : t -> int
val capacity : t -> int
