(* Physical query plans.

   A plan is a tree of push-based closures compiled once by {!Compile} and
   executed many times.  Every operator carries two equivalent streams over
   pre-resolved integer column positions:

   - [iter] pushes one boxed row at a time into a consumer closure (the
     [Compiled] engine);
   - [biter] pushes {!Column.batch}es — shared typed column vectors plus a
     selection vector — so selections narrow the selection in a tight loop
     over unboxed data and projections remap the vector array, neither
     copying rows (the [Vectorized] engine).

   Both streams produce the same rows in the same order, so float
   accumulations downstream (answer probabilities, SUM/AVG) are
   bit-identical across engines — the property the differential suites
   assert.  Operators without a profitable batch form derive [biter] from
   the row stream through {!Column.batching_sink}.

   Pipeline breakers (hash-join builds, nested-loop inner sides, distinct,
   group-by) buffer rows in structures local to one execution — a compiled
   plan itself is immutable, so several domains may execute the same plan
   concurrently.

   Base relations are parameters: a pipe resolves [Base] leaves through the
   catalog at execution time, which keeps plans valid across executions and
   lets an index probe honour {!Catalog.set_indexing} dynamically, exactly
   like the interpreted evaluator. *)

type env = { cat : Catalog.t; ctrs : Eval.counters option }

type sink = Value.t array -> unit
type bsink = Column.batch -> unit

type pipe = {
  cols : string list;
  iter : env -> sink -> unit;
  biter : env -> bsink -> unit;
  stored : (env -> Relation.t) option;
      (* When the pipe's rows are exactly a stored relation's rows (modulo
         header names), expose it so consumers can borrow the row array
         instead of re-streaming. *)
  check : env -> bool;  (* non-emptiness, short-circuiting *)
  desc : string;
}

exception Found_row

(* Smart constructor: wraps both streams with per-execution row accounting
   (skipped entirely when no counters are attached) and derives the batch
   stream and a short-circuiting emptiness check unless supplied.  The
   derived check runs with accounting suppressed: an emptiness probe
   executes no complete operator, so it must leave both the operator and
   the access-path counters untouched. *)
let make ?stored ?check ?biter ~kind ~cols ~desc iter =
  let raw_iter = iter in
  let raw_biter =
    match biter with
    | Some b -> b
    | None ->
      fun env bsink ->
        let push, flush = Column.batching_sink bsink in
        raw_iter env push;
        flush ()
  in
  let iter env sink =
    match env.ctrs with
    | None -> raw_iter env sink
    | Some _ ->
      let n = ref 0 in
      raw_iter env (fun row ->
          incr n;
          sink row);
      Eval.record_op env.ctrs kind ~rows:!n
  in
  let biter env bsink =
    match env.ctrs with
    | None -> raw_biter env bsink
    | Some _ ->
      let n = ref 0 in
      raw_biter env (fun b ->
          n := !n + b.Column.n;
          bsink b);
      Eval.record_op env.ctrs kind ~rows:!n
  in
  let check =
    match check with
    | Some c -> c
    | None -> (
      fun env ->
        let env = { env with ctrs = None } in
        try
          raw_iter env (fun _ -> raise Found_row);
          false
        with Found_row -> true)
  in
  { cols; iter; biter; stored; check; desc }

let iter_stored rel env sink =
  let rows = (rel env).Relation.rows in
  for i = 0 to Array.length rows - 1 do
    sink rows.(i)
  done

(* Stored relations stream columnar without transposing: chunked identity
   selections over the relation's memoised typed vectors. *)
let biter_stored rel env bsink =
  let r = rel env in
  let n = Relation.cardinality r in
  if n > 0 then begin
    let vecs = Relation.columns r in
    Column.iter_chunks n ~f:(fun sel len ->
        bsink { Column.vecs; sel; n = len })
  end

(* ------------------------------------------------------------------ *)
(* Leaves. *)

let scan ~name ~cols =
  let rel env = Catalog.find env.cat name in
  {
    cols;
    iter = iter_stored rel;
    biter = biter_stored rel;
    stored = Some rel;
    check = (fun env -> not (Relation.is_empty (rel env)));
    desc = Printf.sprintf "scan(%s)" name;
  }

let const r =
  {
    cols = Relation.cols r;
    iter = iter_stored (fun _ -> r);
    biter = biter_stored (fun _ -> r);
    stored = Some (fun _ -> r);
    check = (fun _ -> not (Relation.is_empty r));
    desc = Printf.sprintf "mat(R%d)" r.Relation.id;
  }

(* σ[col = const] over a stored relation through the catalog's hash index.
   [Catalog.lookup] falls back to scanning when indexing is disabled, so the
   compiled plan tracks the ablation toggle at execution time. *)
let index_probe ~name ~col ~value ~cols =
  let iter env sink =
    Eval.record_access env.ctrs
      (if Catalog.indexing_enabled env.cat then Eval.Index_probe else Eval.Scan);
    List.iter sink (Catalog.lookup env.cat name col value)
  in
  make ~kind:Eval.Op_select ~cols
    ~desc:(Printf.sprintf "probe(%s.%s=%s)" name col (Value.to_string value))
    iter

(* ------------------------------------------------------------------ *)
(* Streaming (fused) operators. *)

(* Fallback batch predicate: evaluate the row predicate over materialised
   rows.  [Compile] passes a typed [bpred] built against the concrete
   vector representations wherever it can. *)
let bpred_of_pred pred b =
  let g = Column.getter in
  let getters = Array.map g b.Column.vecs in
  fun i -> pred (Array.map (fun get -> get i) getters)

let filter ?bpred ~pred inner =
  let bpred = match bpred with Some b -> b | None -> bpred_of_pred pred in
  make ~kind:Eval.Op_select ~cols:inner.cols ~desc:("σ(" ^ inner.desc ^ ")")
    ~biter:(fun env bsink ->
      Eval.record_access env.ctrs Eval.Scan;
      inner.biter env (fun b ->
          let live = bpred b in
          let out = Array.make b.Column.n 0 in
          let m = ref 0 in
          for k = 0 to b.Column.n - 1 do
            let i = b.Column.sel.(k) in
            if live i then begin
              out.(!m) <- i;
              incr m
            end
          done;
          if !m > 0 then bsink { b with Column.sel = out; n = !m }))
    (fun env sink ->
      Eval.record_access env.ctrs Eval.Scan;
      inner.iter env (fun row -> if pred row then sink row))

let project ~positions ~cols inner =
  make ~kind:Eval.Op_project ~cols
    ~check:inner.check
    ~desc:
      (Printf.sprintf "π[%s](%s)" (String.concat "," cols) inner.desc)
    ~biter:(fun env bsink ->
      inner.biter env (fun b ->
          bsink
            { b with
              Column.vecs = Array.map (fun i -> b.Column.vecs.(i)) positions
            }))
    (fun env sink ->
      inner.iter env (fun row -> sink (Array.map (fun i -> row.(i)) positions)))

(* A rename is free at execution time: only the header changes. *)
let with_cols cols inner = { inner with cols }

let distinct inner =
  make ~kind:Eval.Op_distinct ~cols:inner.cols ~check:inner.check
    ~desc:("δ(" ^ inner.desc ^ ")")
    ~biter:(fun env bsink ->
      let seen : (Value.t array, unit) Hashtbl.t = Hashtbl.create 64 in
      let push, flush = Column.batching_sink bsink in
      inner.biter env (fun b ->
          for k = 0 to b.Column.n - 1 do
            let row = Column.row b k in
            if not (Hashtbl.mem seen row) then begin
              Hashtbl.replace seen row ();
              push row
            end
          done);
      flush ())
    (fun env sink ->
      let seen : (Value.t array, unit) Hashtbl.t = Hashtbl.create 64 in
      inner.iter env (fun row ->
          if not (Hashtbl.mem seen row) then begin
            Hashtbl.replace seen row ();
            sink row
          end))

(* ------------------------------------------------------------------ *)
(* Binary operators.  Output columns are always [left.cols @ right.cols]
   regardless of which side is built or buffered. *)

let hash_join ~build_left ~lkey ~rkey ~residual left right =
  let cols = left.cols @ right.cols in
  let desc =
    Printf.sprintf "hash_join[build=%s](%s, %s)"
      (if build_left then "left" else "right")
      left.desc right.desc
  in
  (* The build table is a pure function of the catalog (pipes are
     deterministic and the catalog is immutable after generation), so it is
     memoised across executions of the shared plan — in effect a per-plan
     join index, built on the first execution and probed by the rest.  The
     [Atomic] publishes the fully-built table; a concurrent first execution
     may build twice, and the last store wins (both tables are identical).
     Both engines share it. *)
  let memo : (Catalog.t * (Value.t, Value.t array list) Hashtbl.t) option
             Atomic.t =
    Atomic.make None
  in
  let table_for env =
    match Atomic.get memo with
    | Some (cat, table) when cat == env.cat -> table
    | _ ->
      let table : (Value.t, Value.t array list) Hashtbl.t =
        Hashtbl.create 64
      in
      let side, key = if build_left then (left, lkey) else (right, rkey) in
      side.iter env (fun row ->
          let k = row.(key) in
          let prev = try Hashtbl.find table k with Not_found -> [] in
          Hashtbl.replace table k (row :: prev));
      Atomic.set memo (Some (env.cat, table));
      table
  in
  make ~kind:Eval.Op_join ~cols ~desc
    ~biter:(fun env bsink ->
      let table = table_for env in
      let push, flush = Column.batching_sink bsink in
      let emit =
        match residual with
        | None -> push
        | Some p -> fun row -> if p row then push row
      in
      (* Probe the other side batch-wise: the key getter specialises per
         batch, matches replay in the row engine's (reversed-build) order. *)
      if build_left then
        right.biter env (fun b ->
            let key = Column.getter b.Column.vecs.(rkey) in
            for k = 0 to b.Column.n - 1 do
              let i = b.Column.sel.(k) in
              match Hashtbl.find_opt table (key i) with
              | None -> ()
              | Some ls ->
                let rrow = Column.row b k in
                List.iter (fun lrow -> emit (Array.append lrow rrow)) ls
            done)
      else
        left.biter env (fun b ->
            let key = Column.getter b.Column.vecs.(lkey) in
            for k = 0 to b.Column.n - 1 do
              let i = b.Column.sel.(k) in
              match Hashtbl.find_opt table (key i) with
              | None -> ()
              | Some rs ->
                let lrow = Column.row b k in
                List.iter (fun rrow -> emit (Array.append lrow rrow)) rs
            done);
      flush ())
    (fun env sink ->
      let emit =
        match residual with
        | None -> sink
        | Some p -> fun row -> if p row then sink row
      in
      let table = table_for env in
      if build_left then
        right.iter env (fun rrow ->
            match Hashtbl.find_opt table rrow.(rkey) with
            | None -> ()
            | Some ls -> List.iter (fun lrow -> emit (Array.append lrow rrow)) ls)
      else
        left.iter env (fun lrow ->
            match Hashtbl.find_opt table lrow.(lkey) with
            | None -> ()
            | Some rs -> List.iter (fun rrow -> emit (Array.append lrow rrow)) rs))

let nl_product left right =
  let cols = left.cols @ right.cols in
  let right_arity = List.length right.cols in
  make ~kind:Eval.Op_product ~cols
    ~check:(fun env -> left.check env && right.check env)
    ~desc:(Printf.sprintf "×(%s, %s)" left.desc right.desc)
    ~biter:(fun env bsink ->
      (* Right side columnised once; each left row broadcasts as constant
         vectors over the right chunks — no combined row materialises. *)
      let rvecs, rn =
        match right.stored with
        | Some rel ->
          let r = rel env in
          (lazy (Relation.columns r), Relation.cardinality r)
        | None ->
          let buf = ref [] in
          right.iter env (fun row -> buf := row :: !buf);
          let rows = Array.of_list (List.rev !buf) in
          (lazy (Column.of_rows ~arity:right_arity rows), Array.length rows)
      in
      if rn > 0 then begin
        let rvecs = Lazy.force rvecs in
        let chunks = ref [] in
        Column.iter_chunks rn ~f:(fun sel len -> chunks := (sel, len) :: !chunks);
        let chunks = List.rev !chunks in
        left.biter env (fun lb ->
            for k = 0 to lb.Column.n - 1 do
              let i = lb.Column.sel.(k) in
              let consts =
                Array.map
                  (fun v -> Column.VConst (Column.get v i))
                  lb.Column.vecs
              in
              List.iter
                (fun (sel, len) ->
                  bsink { Column.vecs = Array.append consts rvecs; sel; n = len })
                chunks
            done)
      end)
    (fun env sink ->
      let rrows =
        match right.stored with
        | Some rel -> (rel env).Relation.rows
        | None ->
          let buf = ref [] in
          right.iter env (fun row -> buf := row :: !buf);
          Array.of_list (List.rev !buf)
      in
      if Array.length rrows > 0 then
        left.iter env (fun lrow ->
            for j = 0 to Array.length rrows - 1 do
              sink (Array.append lrow rrows.(j))
            done))

(* [guard gs inner] emits [inner]'s rows only when every guard pipe is
   non-empty — the compiled form of the distinct-projection factorisation's
   emptiness tests for factors that carry no projected column. *)
let guard gs inner =
  let pass env = List.for_all (fun g -> g.check env) gs in
  {
    cols = inner.cols;
    iter = (fun env sink -> if pass env then inner.iter env sink);
    biter = (fun env bsink -> if pass env then inner.biter env bsink);
    stored = None;
    check = (fun env -> pass env && inner.check env);
    desc =
      Printf.sprintf "guard[%s](%s)"
        (String.concat "; " (List.map (fun g -> g.desc) gs))
        inner.desc;
  }

(* ------------------------------------------------------------------ *)
(* Single-pass aggregation.  An [agg_state] is a fresh (feed, finish) pair
   per execution (and per group), so plans stay re-entrant. *)

type agg_spec =
  | Count_spec
  | Sum_spec of int
  | Avg_spec of int
  | Min_spec of int
  | Max_spec of int

let agg_state = function
  | Count_spec ->
    let n = ref 0 in
    ((fun _ -> incr n), fun () -> Value.Int !n)
  | Sum_spec p ->
    let acc = ref Value.Null in
    ((fun row -> acc := Value.add !acc row.(p)), fun () -> !acc)
  | Avg_spec p ->
    let sum = ref 0. and n = ref 0 in
    ( (fun row ->
        let v = row.(p) in
        if not (Value.is_null v) then
          match Value.to_float_opt v with
          | Some f ->
            sum := !sum +. f;
            incr n
          | None -> invalid_arg "Value.add: string operand"),
      fun () ->
        if !n = 0 then Value.Null else Value.Float (!sum /. float_of_int !n) )
  | (Min_spec p | Max_spec p) as spec ->
    let keep =
      match spec with Max_spec _ -> (fun c -> c > 0) | _ -> fun c -> c < 0
    in
    let best = ref None in
    ( (fun row ->
        let v = row.(p) in
        if not (Value.is_null v) then
          match !best with
          | Some b when not (keep (Value.compare v b)) -> ()
          | _ -> best := Some v),
      fun () -> Option.value ~default:Value.Null !best )

(* Batch aggregate state: same accumulation order as {!agg_state} (rows in
   selection order), so float sums stay bit-identical across engines. *)
let agg_bstate spec =
  match spec with
  | Count_spec ->
    let n = ref 0 in
    ((fun b -> n := !n + b.Column.n), fun () -> Value.Int !n)
  | Sum_spec p ->
    let acc = ref Value.Null in
    ( (fun b ->
        let get = Column.getter b.Column.vecs.(p) in
        for k = 0 to b.Column.n - 1 do
          acc := Value.add !acc (get b.Column.sel.(k))
        done),
      fun () -> !acc )
  | Avg_spec p ->
    let sum = ref 0. and n = ref 0 in
    ( (fun b ->
        let get = Column.getter b.Column.vecs.(p) in
        for k = 0 to b.Column.n - 1 do
          let v = get b.Column.sel.(k) in
          if not (Value.is_null v) then
            match Value.to_float_opt v with
            | Some f ->
              sum := !sum +. f;
              incr n
            | None -> invalid_arg "Value.add: string operand"
        done),
      fun () ->
        if !n = 0 then Value.Null else Value.Float (!sum /. float_of_int !n) )
  | (Min_spec p | Max_spec p) as spec ->
    let keep =
      match spec with Max_spec _ -> (fun c -> c > 0) | _ -> fun c -> c < 0
    in
    let best = ref None in
    ( (fun b ->
        let get = Column.getter b.Column.vecs.(p) in
        for k = 0 to b.Column.n - 1 do
          let v = get b.Column.sel.(k) in
          if not (Value.is_null v) then
            match !best with
            | Some bst when not (keep (Value.compare v bst)) -> ()
            | _ -> best := Some v
        done),
      fun () -> Option.value ~default:Value.Null !best )

let spec_name = function
  | Count_spec -> "count"
  | Sum_spec _ -> "sum"
  | Avg_spec _ -> "avg"
  | Min_spec _ -> "min"
  | Max_spec _ -> "max"

let aggregate ~spec ~col inner =
  make ~kind:Eval.Op_aggregate ~cols:[ col ]
    ~check:(fun _ -> true) (* aggregates always emit exactly one row *)
    ~desc:(Printf.sprintf "agg[%s](%s)" (spec_name spec) inner.desc)
    ~biter:(fun env bsink ->
      let feed, finish = agg_bstate spec in
      inner.biter env feed;
      bsink (Column.batch_of_rows [| [| finish () |] |] 1))
    (fun env sink ->
      let feed, finish = agg_state spec in
      inner.iter env feed;
      sink [| finish () |])

(* Hash grouping with first-appearance output order (same as the
   interpreted evaluator), one aggregate state per group — the group's rows
   are folded as they stream by, never collected. *)
let group_by ~key_pos ~spec ~cols inner =
  let fold_groups drive =
    let groups :
        (Value.t array, (Value.t array -> unit) * (unit -> Value.t)) Hashtbl.t =
      Hashtbl.create 64
    in
    let order = ref [] in
    drive (fun row ->
        let key = Array.map (fun i -> row.(i)) key_pos in
        let feed =
          match Hashtbl.find_opt groups key with
          | Some (feed, _) -> feed
          | None ->
            let state = agg_state spec in
            Hashtbl.add groups key state;
            order := key :: !order;
            fst state
        in
        feed row);
    (groups, List.rev !order)
  in
  make ~kind:Eval.Op_groupby ~cols ~check:inner.check
    ~desc:(Printf.sprintf "γ[%s](%s)" (spec_name spec) inner.desc)
    ~biter:(fun env bsink ->
      let groups, order =
        fold_groups (fun f ->
            inner.biter env (fun b ->
                for k = 0 to b.Column.n - 1 do
                  f (Column.row b k)
                done))
      in
      let push, flush = Column.batching_sink bsink in
      List.iter
        (fun key ->
          let _, finish = Hashtbl.find groups key in
          push (Array.append key [| finish () |]))
        order;
      flush ())
    (fun env sink ->
      let groups, order = fold_groups (fun f -> inner.iter env f) in
      List.iter
        (fun key ->
          let _, finish = Hashtbl.find groups key in
          sink (Array.append key [| finish () |]))
        order)

(* ------------------------------------------------------------------ *)
(* A complete plan: a root pipe plus the header the result must carry. *)

type t = { header : string list; root : pipe }

let of_pipe ~header root = { header; root }
let header t = t.header
let describe t = t.root.desc

let execute ?ctrs cat t =
  let env = { cat; ctrs } in
  match t.root.stored with
  | Some rel ->
    (* Zero-copy: the root is a stored relation; only the header may need
       re-labelling (rows are immutable and shared safely). *)
    let r = rel env in
    if Relation.cols r = t.header then r
    else Relation.of_rows ~cols:t.header r.Relation.rows
  | None ->
    let buf = ref [] in
    t.root.iter env (fun row -> buf := row :: !buf);
    Relation.of_rows ~cols:t.header (Array.of_list (List.rev !buf))

let execute_batches ?ctrs cat t =
  let env = { cat; ctrs } in
  match t.root.stored with
  | Some rel ->
    let r = rel env in
    if Relation.cols r = t.header then r
    else Relation.of_rows ~cols:t.header r.Relation.rows
  | None ->
    let buf = ref [] in
    t.root.biter env (fun b ->
        for k = 0 to b.Column.n - 1 do
          buf := Column.row b k :: !buf
        done);
    Relation.of_rows ~cols:t.header (Array.of_list (List.rev !buf))

(* Stream the result rows without materialising a relation (the fused
   evaluate-and-accumulate path of the basic algorithm).  Emitted arrays
   are never mutated afterwards, so consumers may keep them. *)
let iter_rows ?ctrs cat t ~f = t.root.iter { cat; ctrs } f

(* Stream the result as batches (the vectorized fused path).  Batches are
   only valid during the callback: vectors are shared, but selection arrays
   may be reused by producers — consumers must not retain them. *)
let iter_batches ?ctrs cat t ~f = t.root.biter { cat; ctrs } f

(* The weight-vector channel: the batch stream with every batch carrying
   the producing e-unit's mapping-mass vector.  The plan runs exactly once
   regardless of how many mappings the vector describes — that is the
   factorized executor's one-pass-for-all-h property. *)
let iter_wbatches ?ctrs cat t ~weights ~f =
  t.root.biter { cat; ctrs } (fun batch -> f { Column.batch; weights })

let nonempty ?ctrs cat t = t.root.check { cat; ctrs }
