(** In-memory relations: a column header plus an array of rows.

    Every relation carries a process-unique [id]; the o-sharing operator
    memo table keys on it to recognise "the same intermediate result" without
    comparing contents. *)

type t = private {
  id : int;
  cols : string array;
  positions : (string, int) Hashtbl.t;
  rows : Value.t array array;
  vecs : Column.vec array option Atomic.t;
      (** lazily-built typed columns; read through {!columns} *)
}

(** [create ~cols rows] checks that every row has the arity of [cols] and
    that column names are distinct. *)
val create : cols:string list -> Value.t array list -> t

(** [of_rows ~cols rows] like {!create} but from an array (no copy). *)
val of_rows : cols:string list -> Value.t array array -> t

val empty : cols:string list -> t
val cardinality : t -> int
val arity : t -> int
val is_empty : t -> bool
val cols : t -> string list

(** [col_pos t name] is the index of column [name].
    Raises [Not_found] when absent. *)
val col_pos : t -> string -> int

val mem_col : t -> string -> bool

(** [value t row col] is the value at row index [row], column [col]. *)
val value : t -> int -> string -> Value.t

(** [columns t] the typed column vectors of [t], built on first use and
    memoised for the relation's lifetime (rows are immutable).  Safe from
    concurrent domains: racing builders publish identical vectors. *)
val columns : t -> Column.vec array

(** [filter t f] keeps rows satisfying [f]. *)
val filter : t -> (Value.t array -> bool) -> t

(** [project t cols] reorders/selects columns; duplicate rows are kept (bag
    semantics).  Raises [Not_found] on unknown columns. *)
val project : t -> string list -> t

(** [distinct t] removes duplicate rows. *)
val distinct : t -> t

(** [product a b] Cartesian product; column names must not clash. *)
val product : t -> t -> t

(** [rename t f] renames every column through [f]. *)
val rename : t -> (string -> string) -> t

(** [rename_prefix t p] prepends ["p#"] to every column name; used to give
    each target-alias instantiation of a source relation distinct columns. *)
val rename_prefix : t -> string -> t

(** [iter f t] applies [f] to each row. *)
val iter : (Value.t array -> unit) -> t -> unit

val fold : ('a -> Value.t array -> 'a) -> 'a -> t -> 'a

(** [equal_contents a b] ignores ids and compares header and row multisets. *)
val equal_contents : t -> t -> bool

(** [pp ~max_rows ppf t] prints a header line and up to [max_rows] rows. *)
val pp : ?max_rows:int -> Format.formatter -> t -> unit
