type agg =
  | Count
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string

type t =
  | Base of string
  | Mat of Relation.t
  | Rename of string * t
  | Select of Pred.t * t
  | Project of string list * t
  | Distinct of t
  | Product of t * t
  | Join of Pred.t * t * t
  | Aggregate of agg * t
  | GroupBy of string list * agg * t

let rec size = function
  | Base _ | Mat _ -> 0
  | Rename (_, e) -> size e
  | Select (_, e) | Project (_, e) | Distinct e | Aggregate (_, e)
  | GroupBy (_, _, e) ->
    1 + size e
  | Product (a, b) | Join (_, a, b) -> 1 + size a + size b

let agg_str = function
  | Count -> "count"
  | Sum c -> "sum(" ^ c ^ ")"
  | Avg c -> "avg(" ^ c ^ ")"
  | Min c -> "min(" ^ c ^ ")"
  | Max c -> "max(" ^ c ^ ")"

let output_col = agg_str

let rec fingerprint = function
  | Base n -> "b:" ^ n
  | Mat r -> "m:" ^ string_of_int r.Relation.id
  | Rename (p, e) -> "r:" ^ p ^ "(" ^ fingerprint e ^ ")"
  | Select (p, e) -> "s:" ^ Pred.to_string p ^ "(" ^ fingerprint e ^ ")"
  | Project (cs, e) -> "p:" ^ String.concat "," cs ^ "(" ^ fingerprint e ^ ")"
  | Distinct e -> "d(" ^ fingerprint e ^ ")"
  | Product (a, b) -> "x(" ^ fingerprint a ^ "," ^ fingerprint b ^ ")"
  | Join (p, a, b) ->
    "j:" ^ Pred.to_string p ^ "(" ^ fingerprint a ^ "," ^ fingerprint b ^ ")"
  | Aggregate (a, e) -> "a:" ^ agg_str a ^ "(" ^ fingerprint e ^ ")"
  | GroupBy (keys, a, e) ->
    "g:" ^ String.concat "," keys ^ ":" ^ agg_str a ^ "(" ^ fingerprint e ^ ")"

(* Commutative conjunctions are rebuilt in sorted order so that two
   reformulations differing only in conjunct arrangement key identically.
   Only predicates are normalised: column lists (Project/GroupBy) and
   product order determine the result header and row order, so they must
   stay untouched. *)
let canonical_pred p =
  Pred.conj
    (List.sort
       (fun a b -> String.compare (Pred.to_string a) (Pred.to_string b))
       (Pred.conjuncts p))

let rec canonical = function
  | (Base _ | Mat _) as e -> e
  | Rename (p, e) -> Rename (p, canonical e)
  | Select (p, e) -> Select (canonical_pred p, canonical e)
  | Project (cs, e) -> Project (cs, canonical e)
  | Distinct e -> Distinct (canonical e)
  | Product (a, b) -> Product (canonical a, canonical b)
  | Join (p, a, b) -> Join (canonical_pred p, canonical a, canonical b)
  | Aggregate (a, e) -> Aggregate (a, canonical e)
  | GroupBy (keys, a, e) -> GroupBy (keys, a, canonical e)

let canonical_fingerprint e = fingerprint (canonical e)

let equal a b = String.equal (fingerprint a) (fingerprint b)
let compare a b = String.compare (fingerprint a) (fingerprint b)
let hash t = Hashtbl.hash (fingerprint t)

let children = function
  | Base _ | Mat _ -> []
  | Rename (_, e)
  | Select (_, e)
  | Project (_, e)
  | Distinct e
  | Aggregate (_, e)
  | GroupBy (_, _, e) -> [ e ]
  | Product (a, b) | Join (_, a, b) -> [ a; b ]

let rec subexpressions t = t :: List.concat_map subexpressions (children t)

let rec contains_mat = function
  | Mat _ -> true
  | e -> List.exists contains_mat (children e)

let rec pp ppf = function
  | Base n -> Format.pp_print_string ppf n
  | Mat r ->
    Format.fprintf ppf "⟨R%d:%d rows⟩" r.Relation.id (Relation.cardinality r)
  | Rename (p, e) -> Format.fprintf ppf "ρ_%s(%a)" p pp e
  | Select (p, e) -> Format.fprintf ppf "σ[%a](%a)" Pred.pp p pp e
  | Project (cs, e) ->
    Format.fprintf ppf "π[%s](%a)" (String.concat "," cs) pp e
  | Distinct e -> Format.fprintf ppf "δ(%a)" pp e
  | Product (a, b) -> Format.fprintf ppf "(%a × %a)" pp a pp b
  | Join (p, a, b) -> Format.fprintf ppf "(%a ⋈[%a] %a)" pp a Pred.pp p pp b
  | Aggregate (a, e) -> Format.fprintf ppf "%s(%a)" (agg_str a) pp e
  | GroupBy (keys, a, e) ->
    Format.fprintf ppf "γ[%s;%s](%a)" (String.concat "," keys) (agg_str a) pp e

let to_string t = Format.asprintf "%a" pp t
