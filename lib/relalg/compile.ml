(* Lowering {!Algebra.t} expressions to physical {!Plan.t}s.

   The compiler runs the shared logical optimiser first, then lowers the
   optimised tree with the physical decisions the interpreter makes row by
   row taken once, at compile time:

   - column names become integer positions (predicates, projections and
     group keys are compiled against the producing pipe's header);
   - select/project chains fuse into their producer (no intermediate
     relation per σ/π);
   - a select/join/product cluster is flattened into (conjuncts, factors)
     and re-assembled greedily left-deep by estimated cardinality
     ({!Stats_est} when available, the MQO planner's fixed guesses
     otherwise), with the hash-join build on the estimated-smaller input;
   - δπ over a product factorises per connected component of the join
     graph, factors without projected columns becoming emptiness guards —
     the physical form of the interpreter's [distinct_project].

   Compilation cost is paid once per plan shape; {!Plan_cache} amortises it
   across the h reformulated queries of a mapping distribution. *)

type engine = Interpreted | Compiled | Vectorized

let engine_name = function
  | Interpreted -> "interpreted"
  | Compiled -> "compiled"
  | Vectorized -> "vectorized"

let engine_of_string = function
  | "interpreted" -> Ok Interpreted
  | "compiled" -> Ok Compiled
  | "vectorized" -> Ok Vectorized
  | s ->
    Error
      (Printf.sprintf "unknown engine %S (expected interpreted|compiled|vectorized)" s)

type env = {
  cat : Catalog.t;
  lock : Mutex.t;
  mutable stats : Stats_est.t option;
  c_plans : Urm_obs.Metrics.counter;
  c_stats_builds : Urm_obs.Metrics.counter;
  t_compile : Urm_obs.Metrics.timer;
}

let create_env ?(metrics = Urm_obs.Metrics.global) cat =
  let m = Urm_obs.Metrics.scope metrics "relalg" in
  {
    cat;
    lock = Mutex.create ();
    stats = None;
    c_plans = Urm_obs.Metrics.counter m "compile.plans";
    c_stats_builds = Urm_obs.Metrics.counter m "compile.stats_builds";
    t_compile = Urm_obs.Metrics.timer m "compile.seconds";
  }

(* Statistics are built lazily, once per environment (one full scan of the
   catalog), under a mutex so concurrent first compilations are safe. *)
let stats env =
  Mutex.lock env.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock env.lock)
    (fun () ->
      match env.stats with
      | Some st -> st
      | None ->
        let st = Stats_est.build env.cat in
        Urm_obs.Metrics.incr env.c_stats_builds;
        env.stats <- Some st;
        st)

(* ------------------------------------------------------------------ *)
(* Cardinality estimation — the MQO planner's model (fixed fallbacks when a
   column does not resolve to a stored relation's column). *)

let selectivity_select = 0.1
let selectivity_join = 0.05

let unrename col =
  match (String.index_opt col '@', String.index_opt col '#') with
  | Some at, Some hash when at < hash ->
    Some
      ( String.sub col (at + 1) (hash - at - 1),
        String.sub col (hash + 1) (String.length col - hash - 1) )
  | _ -> None

let atom_selectivity st = function
  | Pred.Cmp (Pred.Eq, col, v) -> begin
    match unrename col with
    | Some (rel, c) -> ( try Stats_est.eq_selectivity st rel c v with Not_found -> selectivity_select)
    | None -> selectivity_select
  end
  | Pred.CmpCols (Pred.Eq, a, b) -> begin
    match (unrename a, unrename b) with
    | Some (ra, ca), Some (rb, cb) -> (
      try Stats_est.join_selectivity st ra ca rb cb with Not_found -> selectivity_join)
    | _ -> selectivity_join
  end
  | Pred.True -> 1.
  | _ -> 0.3

let conjs_selectivity st conjs =
  List.fold_left (fun acc c -> acc *. atom_selectivity st c) 1. conjs

let rec est_card st cat = function
  | Algebra.Base n -> float_of_int (Relation.cardinality (Catalog.find cat n))
  | Algebra.Mat r -> float_of_int (Relation.cardinality r)
  | Algebra.Rename (_, e) -> est_card st cat e
  | Algebra.Select (p, e) ->
    Float.max 1. (conjs_selectivity st (Pred.conjuncts p) *. est_card st cat e)
  | Algebra.Project (_, e) | Algebra.Distinct e -> est_card st cat e
  | Algebra.Product (a, b) -> est_card st cat a *. est_card st cat b
  | Algebra.Join (p, a, b) ->
    Float.max 1.
      (conjs_selectivity st (Pred.conjuncts p) *. est_card st cat a *. est_card st cat b)
  | Algebra.Aggregate _ -> 1.
  | Algebra.GroupBy (_, _, e) -> Float.max 1. (0.1 *. est_card st cat e)

(* ------------------------------------------------------------------ *)
(* Predicate and projection compilation against a pipe's header. *)

let positions cols =
  let h = Hashtbl.create (2 * List.length cols) in
  List.iteri (fun i c -> if not (Hashtbl.mem h c) then Hashtbl.add h c i) cols;
  fun c -> match Hashtbl.find_opt h c with Some i -> i | None -> raise Not_found

let test cmp c =
  match cmp with
  | Pred.Eq -> c = 0
  | Pred.Ne -> c <> 0
  | Pred.Lt -> c < 0
  | Pred.Le -> c <= 0
  | Pred.Gt -> c > 0
  | Pred.Ge -> c >= 0

let compile_pred pos p =
  let rec build = function
    | Pred.True -> fun _ -> true
    | Pred.Cmp (cmp, c, v) ->
      let i = pos c in
      fun row -> test cmp (Value.compare row.(i) v)
    | Pred.CmpCols (cmp, a, b) ->
      let i = pos a and j = pos b in
      fun row -> test cmp (Value.compare row.(i) row.(j))
    | Pred.And (a, b) ->
      let fa = build a and fb = build b in
      fun row -> fa row && fb row
    | Pred.Or (a, b) ->
      let fa = build a and fb = build b in
      fun row -> fa row || fb row
    | Pred.Not a ->
      let fa = build a in
      fun row -> not (fa row)
  in
  build p

(* Batch form of [compile_pred]: given a batch, specialise the predicate
   against the concrete vector representations and return a test over
   absolute row indices.  Typed vectors compare unboxed (int/float/interned
   string); constants of a different payload type reduce to the constant
   rank comparison of [Value.compare] (the payload is irrelevant across
   ranks, so a same-rank witness like [Value.Int 0] stands in); the boxed
   fallback matches the row engine verbatim. *)
let compile_bpred pos p =
  let open Column in
  let rec build = function
    | Pred.True -> fun _ _ -> true
    | Pred.Cmp (cmp, col, v) ->
      let i = pos col in
      let null_r = test cmp (Value.compare Value.Null v) in
      fun b ->
        (match b.vecs.(i) with
        | VInt (a, mask) -> (
          match v with
          | Value.Int c -> (
            match mask with
            | None -> fun j -> test cmp (Int.compare a.(j) c)
            | Some m ->
              fun j ->
                if null_at m j then null_r else test cmp (Int.compare a.(j) c))
          | _ ->
            let r = test cmp (Value.compare (Value.Int 0) v) in
            (match mask with
            | None -> fun _ -> r
            | Some m -> fun j -> if null_at m j then null_r else r))
        | VFloat (a, mask) -> (
          match v with
          | Value.Float c -> (
            match mask with
            | None -> fun j -> test cmp (Float.compare a.(j) c)
            | Some m ->
              fun j ->
                if null_at m j then null_r else test cmp (Float.compare a.(j) c))
          | _ ->
            let r = test cmp (Value.compare (Value.Float 0.) v) in
            (match mask with
            | None -> fun _ -> r
            | Some m -> fun j -> if null_at m j then null_r else r))
        | VStr (ids, dict) -> (
          match v with
          | Value.Str s ->
            (* Pre-decide the answer per dictionary entry. *)
            let ok = Array.map (fun d -> test cmp (String.compare d s)) dict in
            fun j ->
              let id = ids.(j) in
              if id < 0 then null_r else ok.(id)
          | _ ->
            let r = test cmp (Value.compare (Value.Str "") v) in
            fun j -> if ids.(j) < 0 then null_r else r)
        | VVal a -> fun j -> test cmp (Value.compare a.(j) v)
        | VConst c ->
          let r = test cmp (Value.compare c v) in
          fun _ -> r)
    | Pred.CmpCols (cmp, x, y) ->
      let ix = pos x and iy = pos y in
      fun b ->
        (match (b.vecs.(ix), b.vecs.(iy)) with
        | VInt (a, None), VInt (c, None) ->
          fun j -> test cmp (Int.compare a.(j) c.(j))
        | VFloat (a, None), VFloat (c, None) ->
          fun j -> test cmp (Float.compare a.(j) c.(j))
        | va, vb ->
          let ga = Column.getter va and gb = Column.getter vb in
          fun j -> test cmp (Value.compare (ga j) (gb j)))
    | Pred.And (a, b) ->
      let fa = build a and fb = build b in
      fun bt ->
        let ta = fa bt and tb = fb bt in
        fun j -> ta j && tb j
    | Pred.Or (a, b) ->
      let fa = build a and fb = build b in
      fun bt ->
        let ta = fa bt and tb = fb bt in
        fun j -> ta j || tb j
    | Pred.Not a ->
      let fa = build a in
      fun bt ->
        let ta = fa bt in
        fun j -> not (ta j)
  in
  build p

let filter_conjs conjs pipe =
  match conjs with
  | [] -> pipe
  | _ ->
    let pos = positions pipe.Plan.cols in
    let p = Pred.conj conjs in
    Plan.filter ~pred:(compile_pred pos p) ~bpred:(compile_bpred pos p) pipe

let project_to cs pipe =
  if pipe.Plan.cols = cs then pipe
  else
    let pos = positions pipe.Plan.cols in
    Plan.project ~positions:(Array.of_list (List.map pos cs)) ~cols:cs pipe

let agg_spec pipe a =
  let pos = positions pipe.Plan.cols in
  match a with
  | Algebra.Count -> Plan.Count_spec
  | Algebra.Sum c -> Plan.Sum_spec (pos c)
  | Algebra.Avg c -> Plan.Avg_spec (pos c)
  | Algebra.Min c -> Plan.Min_spec (pos c)
  | Algebra.Max c -> Plan.Max_spec (pos c)

let subset xs set = List.for_all (fun x -> List.mem x set) xs

(* ------------------------------------------------------------------ *)
(* Join-graph construction: flatten a select/join/product cluster into its
   conjuncts and factor expressions (left-to-right leaf order). *)

let rec flatten e preds factors =
  match e with
  | Algebra.Select (p, inner) -> flatten inner (Pred.conjuncts p @ preds) factors
  | Algebra.Product (a, b) ->
    let preds, factors = flatten a preds factors in
    flatten b preds factors
  | Algebra.Join (p, a, b) ->
    let preds = Pred.conjuncts p @ preds in
    let preds, factors = flatten a preds factors in
    flatten b preds factors
  | _ -> (preds, factors @ [ e ])

(* ------------------------------------------------------------------ *)
(* Lowering. *)

type factor = { pipe : Plan.pipe; card : float }

let rec lower env st e =
  match e with
  | Algebra.Base n ->
    let r = Catalog.find env.cat n in
    Plan.scan ~name:n ~cols:(Relation.cols r)
  | Algebra.Mat r -> Plan.const r
  | Algebra.Rename (p, inner) ->
    let pi = lower env st inner in
    Plan.with_cols (List.map (fun c -> p ^ "#" ^ c) pi.Plan.cols) pi
  | Algebra.Select _ | Algebra.Product _ | Algebra.Join _ -> lower_cluster env st e
  | Algebra.Project (cs, inner) -> project_to cs (lower env st inner)
  | Algebra.Distinct (Algebra.Project (cs, inner)) when cs <> [] ->
    lower_distinct_project env st cs inner
  | Algebra.Distinct inner -> Plan.distinct (lower env st inner)
  | Algebra.Aggregate (a, inner) ->
    let pi = lower env st inner in
    Plan.aggregate ~spec:(agg_spec pi a) ~col:(Algebra.output_col a) pi
  | Algebra.GroupBy (keys, a, inner) ->
    let pi = lower env st inner in
    let pos = positions pi.Plan.cols in
    Plan.group_by
      ~key_pos:(Array.of_list (List.map pos keys))
      ~spec:(agg_spec pi a)
      ~cols:(keys @ [ Algebra.output_col a ])
      pi

(* Lower one factor expression, folding in the conjuncts local to it —
   σ[col = const] directly over a stored relation (possibly renamed)
   becomes an index probe, everything else a fused filter. *)
and lower_factor env st fe local =
  let base_probe () =
    let try_probe col v =
      match fe with
      | Algebra.Base n -> Some (n, col, v)
      | Algebra.Rename (p, Algebra.Base n) -> (
        match Eval.strip_prefix p col with
        | Some base_col -> Some (n, base_col, v)
        | None -> None)
      | _ -> None
    in
    let rec pick acc = function
      | [] -> None
      | (Pred.Cmp (Pred.Eq, col, v) as c) :: rest -> (
        match try_probe col v with
        | Some probe -> Some (probe, List.rev_append acc rest)
        | None -> pick (c :: acc) rest)
      | c :: rest -> pick (c :: acc) rest
    in
    pick [] local
  in
  let pipe = lower env st fe in
  let pipe =
    match base_probe () with
    | Some ((n, col, v), rest) ->
      filter_conjs rest (Plan.index_probe ~name:n ~col ~value:v ~cols:pipe.Plan.cols)
    | None -> filter_conjs local pipe
  in
  let card =
    Float.max 1. (conjs_selectivity st local *. est_card st env.cat fe)
  in
  { pipe; card }

(* Greedy left-deep join ordering: start from the estimated-smallest
   factor; repeatedly add the factor connected through applicable conjuncts
   that minimises the estimated joined cardinality (smallest remaining
   factor as cross-product fallback).  The first applicable equality
   conjunct with one side per input becomes the hash key, the rest filter
   the combined row; the hash build goes on the estimated-smaller input. *)
and order_join env st preds factor_exprs =
  (* Conjuncts whose columns sit inside a single factor filter that factor
     before ordering. *)
  let factor_cols = List.map (fun fe -> Eval.cols_of env.cat fe) factor_exprs in
  let local, global =
    List.partition
      (fun p ->
        let pc = Pred.columns p in
        pc <> [] && List.exists (fun cols -> subset pc cols) factor_cols)
      preds
  in
  let factors =
    List.map
      (fun fe ->
        let cols = Eval.cols_of env.cat fe in
        lower_factor env st fe (List.filter (fun p -> subset (Pred.columns p) cols) local))
      factor_exprs
  in
  match factors with
  | [] -> invalid_arg "Compile: empty join cluster"
  | [ f ] -> filter_conjs global f.pipe
  | _ ->
    let smallest rest =
      List.fold_left
        (fun (best, besti, i) f ->
          if f.card < best.card then (f, i, i + 1) else (best, besti, i + 1))
        (List.hd rest, 0, 1) (List.tl rest)
      |> fun (f, i, _) -> (f, i)
    in
    let remove i xs = List.filteri (fun j _ -> j <> i) xs in
    let first, fi = smallest factors in
    let rec grow current rest preds =
      match rest with
      | [] -> filter_conjs preds current.pipe
      | _ ->
        (* Score each candidate: conjuncts applicable once it joins. *)
        let scored =
          List.mapi
            (fun i f ->
              let combined = current.pipe.Plan.cols @ f.pipe.Plan.cols in
              let applicable, _ =
                List.partition (fun p -> subset (Pred.columns p) combined) preds
              in
              let card =
                Float.max 1.
                  (conjs_selectivity st applicable *. current.card *. f.card)
              in
              (i, f, applicable, card))
            rest
        in
        let connected = List.filter (fun (_, _, a, _) -> a <> []) scored in
        let pool = if connected <> [] then connected else scored in
        let best =
          List.fold_left
            (fun best c ->
              let _, _, _, card = c and _, _, _, bcard = best in
              if card < bcard then c else best)
            (List.hd pool) (List.tl pool)
        in
        let i, f, applicable, card = best in
        let remaining = List.filter (fun p -> not (List.memq p applicable)) preds in
        let pipe = join_pair env current f applicable in
        grow { pipe; card } (remove i rest) remaining
    in
    grow first (remove fi factors) global

(* Join [current] with factor [f] under the applicable conjuncts. *)
and join_pair _env current f applicable =
  let lcols = current.pipe.Plan.cols and rcols = f.pipe.Plan.cols in
  let pick_key = function
    | Pred.CmpCols (Pred.Eq, x, y) ->
      if List.mem x lcols && List.mem y rcols then Some (x, y)
      else if List.mem y lcols && List.mem x rcols then Some (y, x)
      else None
    | _ -> None
  in
  let rec find_key acc = function
    | [] -> None
    | c :: rest -> (
      match pick_key c with
      | Some k -> Some (k, List.rev_append acc rest)
      | None -> find_key (c :: acc) rest)
  in
  match find_key [] applicable with
  | Some ((lk, rk), residual_conjs) ->
    let lpos = positions lcols and rpos = positions rcols in
    let residual =
      match residual_conjs with
      | [] -> None
      | _ -> Some (compile_pred (positions (lcols @ rcols)) (Pred.conj residual_conjs))
    in
    Plan.hash_join
      ~build_left:(current.card <= f.card)
      ~lkey:(lpos lk) ~rkey:(rpos rk) ~residual current.pipe f.pipe
  | None -> filter_conjs applicable (Plan.nl_product current.pipe f.pipe)

and lower_cluster env st e =
  let preds, factor_exprs = flatten e [] [] in
  order_join env st preds factor_exprs

(* δπ_C over a join graph: split the factors into connected components of
   the predicate graph, δπ each component to its share of C, combine with
   Cartesian products, and turn componentless-in-C factors into emptiness
   guards. *)
and lower_distinct_project env st cs body =
  let preds, factor_exprs = flatten body [] [] in
  match factor_exprs with
  | [] | [ _ ] -> Plan.distinct (project_to cs (order_join env st preds factor_exprs))
  | _ ->
    let n = List.length factor_exprs in
    let fcols = Array.of_list (List.map (Eval.cols_of env.cat) factor_exprs) in
    (* Union-find over factor indices; every predicate links the factors
       its columns touch. *)
    let parent = Array.init n (fun i -> i) in
    let rec find i = if parent.(i) = i then i else find parent.(i) in
    let union i j = parent.(find i) <- find j in
    List.iter
      (fun p ->
        let idxs = ref [] in
        Array.iteri
          (fun i cols ->
            if List.exists (fun c -> List.mem c cols) (Pred.columns p) then
              idxs := i :: !idxs)
          fcols;
        match !idxs with
        | [] | [ _ ] -> ()
        | first :: rest -> List.iter (fun j -> union first j) rest)
      preds;
    let roots = Array.init n find in
    let comp_roots =
      Array.to_list roots
      |> List.fold_left (fun acc r -> if List.mem r acc then acc else acc @ [ r ]) []
    in
    (* Conjuncts whose columns match no factor must still fail at execution
       like the interpreter's (they reference unknown columns). *)
    let orphans =
      List.filter
        (fun p ->
          not
            (List.exists
               (fun c -> Array.exists (fun cols -> List.mem c cols) fcols)
               (Pred.columns p)))
        preds
    in
    let pieces =
      List.map
        (fun r ->
          let idxs =
            Array.to_list (Array.mapi (fun i rt -> (i, rt)) roots)
            |> List.filter_map (fun (i, rt) -> if rt = r then Some i else None)
          in
          let exprs = List.map (List.nth factor_exprs) idxs in
          let cols = List.concat_map (fun i -> fcols.(i)) idxs in
          let cpreds = List.filter (fun p -> subset (Pred.columns p) cols) preds in
          let joined = order_join env st cpreds exprs in
          let ccs = List.filter (fun c -> List.mem c joined.Plan.cols) cs in
          if ccs = [] then `Guard joined
          else `Piece (Plan.distinct (project_to ccs joined)))
        comp_roots
    in
    let guards = List.filter_map (function `Guard g -> Some g | _ -> None) pieces in
    let carriers = List.filter_map (function `Piece p -> Some p | _ -> None) pieces in
    let combined =
      match carriers with
      | [] ->
        (* No factor carries a projected column — fall back to δπ over the
           whole cluster (cs must then be empty or unknown; mirrors the
           interpreter's general path). *)
        Plan.distinct (project_to cs (order_join env st preds factor_exprs))
      | first :: rest ->
        let prod = List.fold_left Plan.nl_product first rest in
        filter_conjs orphans (project_to cs prod)
    in
    if guards = [] then combined else Plan.guard guards combined

(* ------------------------------------------------------------------ *)

let compile env e =
  Urm_obs.Metrics.time env.t_compile (fun () ->
      let e = Eval.optimize env.cat e in
      let st = stats env in
      let pipe = lower env st e in
      let header = Eval.cols_of env.cat e in
      (* The join-order search may permute columns; re-project so compiled
         and interpreted results carry identical headers. *)
      let pipe = project_to header pipe in
      Urm_obs.Metrics.incr env.c_plans;
      Plan.of_pipe ~header pipe)
