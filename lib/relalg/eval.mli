(** Evaluator for {!Algebra.t} expressions over a {!Catalog.t}.

    The evaluator applies a light logical optimisation before execution —
    conjunct splitting, selection pushdown through products and joins, and
    conversion of equi-selections over products into hash joins — and uses
    catalog hash indexes for equality selections on stored relations.  All
    query-answering algorithms in the core library share this evaluator, so
    their relative performance is not an artefact of differing engines.

    The operator counters feed the paper's Table IV ("# source operators
    executed"). *)

(** Pre-resolved {!Urm_obs.Metrics} handles (per-operator-kind counts,
    index probes vs scans, rows materialised) shared by all operators of
    one run; see DESIGN.md "Metrics & observability" for the names. *)
type op_metrics

type counters = {
  mutable operators : int;  (** operator executions *)
  mutable rows_produced : int;  (** total rows output by all operators *)
  m : op_metrics;
}

(** [fresh_counters ?metrics ()] zeroed counters whose observability
    handles live under [metrics ^ "/relalg"] ([metrics] defaults to
    {!Urm_obs.Metrics.global}; algorithms pass their own named scope so a
    single run yields a per-algorithm breakdown). *)
val fresh_counters : ?metrics:Urm_obs.Metrics.t -> unit -> counters

(** [eval ?ctrs ?optimize cat e] evaluates [e] against [cat].
    [optimize] defaults to [true].  Raises [Not_found] for unknown base
    relations or columns. *)
val eval : ?ctrs:counters -> ?optimize:bool -> Catalog.t -> Algebra.t -> Relation.t

(** Inferred output header of an expression (without evaluating it). *)
val cols_of : Catalog.t -> Algebra.t -> string list

(** The optimisation pass alone, exposed for tests and for the MQO planner's
    cost model. *)
val optimize : Catalog.t -> Algebra.t -> Algebra.t

(** [strip_prefix p col] removes a rename prefix ["p#"] from [col] if
    present ([strip_prefix "a" "a#x" = Some "x"]). *)
val strip_prefix : string -> string -> string option

(** [nonempty ?ctrs cat e] whether [e] has at least one row, without
    materialising Cartesian products (a product is non-empty iff both sides
    are). *)
val nonempty : ?ctrs:counters -> Catalog.t -> Algebra.t -> bool

(** {2 Accounting hooks for the compiled engine}

    {!Plan} executes closures rather than algebra nodes, so it records
    operator executions through these hooks instead of the evaluator's
    internal helpers — both engines feed the same counters. *)

type op_kind =
  | Op_select
  | Op_project
  | Op_distinct
  | Op_product
  | Op_join
  | Op_aggregate
  | Op_groupby

type access_path = Index_probe | Scan

(** [record_op ctrs kind ~rows] accounts one executed operator of [kind]
    that produced [rows] rows.  No-op when [ctrs] is [None]. *)
val record_op : counters option -> op_kind -> rows:int -> unit

(** Account a selection's access-path decision (index probe vs scan). *)
val record_access : counters option -> access_path -> unit
