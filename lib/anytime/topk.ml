open Urm_relalg

(* Anytime top-k: stop as soon as the top-k *set* is stable at confidence
   1−δ.  The decision rule is the sampled analogue of the paper's LB/UB
   pruning: order observed tuples by estimate, take the best k as the
   candidate set S, and require every tuple outside S (and any tuple never
   observed, via the 0-successes Wilson bound) to have an upper bound
   strictly below the smallest lower bound inside S.  When that separation
   holds, no tuple outside S can overtake one inside it at the stated
   confidence. *)

type result = {
  report : Urm.Report.t;
  samples : int;
  shapes : int;
  stop_reason : Budget.stop_reason;
  stopped_early : bool;
}

(* Observed tuples with counts, best-estimate-first (deterministic ties). *)
let ranked (view : Estimator.view) =
  Hashtbl.fold
    (fun t c acc -> (t, !c) :: acc)
    (Lazy.force view.Estimator.counts)
    []
  |> List.sort (fun (ta, ca) (tb, cb) ->
         let c = compare cb ca in
         if c <> 0 then c
         else
           let rec go i =
             if i >= Array.length ta then 0
             else
               let c = Value.compare ta.(i) tb.(i) in
               if c <> 0 then c else go (i + 1)
           in
           go 0)

let separated ~k (view : Estimator.view) =
  let all = ranked view in
  if List.length all < k then false
  else begin
    let rec split i acc = function
      | rest when i = k -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> split (i + 1) (x :: acc) rest
    in
    let top, rest = split 0 [] all in
    let lb_k =
      List.fold_left
        (fun acc (_, c) -> Float.min acc (fst (Estimator.interval view c)))
        infinity top
    in
    view.Estimator.unseen_hi < lb_k
    && List.for_all
         (fun (_, c) -> snd (Estimator.interval view c) < lb_k)
         rest
  end

let run ?seed ?(metrics = Urm_obs.Metrics.global) ?(budget = Budget.default)
    ~k (ctx : Urm.Ctx.t) q ms =
  if k <= 0 then invalid_arg "Anytime.Topk.run: k must be positive";
  let m = Urm_obs.Metrics.scope metrics "anytime" in
  let raw =
    Estimator.drive ?seed ~metrics:m ~budget ~decide:(separated ~k) ctx q ms
  in
  let view = raw.Estimator.view in
  let total = float_of_int (max 1 view.Estimator.n) in
  let answer = Urm.Answer.create (Urm.Reformulate.output_header q) in
  let top =
    let rec take i = function
      | x :: rest when i < k -> x :: take (i + 1) rest
      | _ -> []
    in
    take 0 (ranked view)
  in
  let intervals =
    List.map
      (fun (t, c) ->
        Urm.Answer.add answer t (float_of_int c /. total);
        (t, Estimator.interval view c))
      top
  in
  let report =
    Urm.Report.make ~intervals ~answer ~timings:raw.Estimator.timings
      ~source_operators:raw.Estimator.operators
      ~rows_produced:raw.Estimator.rows_produced ~groups:raw.Estimator.shapes
      ()
  in
  Urm.Report.record_metrics m report;
  Estimator.record_widths m raw;
  {
    report;
    samples = raw.Estimator.samples;
    shapes = raw.Estimator.shapes;
    stop_reason = raw.Estimator.stop_reason;
    stopped_early = raw.Estimator.stop_reason = Budget.Converged;
  }
