type t = {
  max_samples : int option;
  deadline : float option;
  delta : float;
  epsilon : float;
  batch : int;
}

let default =
  {
    max_samples = Some 100_000;
    deadline = None;
    delta = 0.05;
    epsilon = 0.02;
    batch = 64;
  }

(* Backstop for a budget with neither a sample cap nor a deadline: the
   stopping rule is then the only exit, and an unreachable δ/ε would spin
   forever.  2^22 draws bound the run at a few seconds of bookkeeping. *)
let unbounded_cap = 4_194_304

let validate t =
  if not (t.delta > 0. && t.delta < 1.) then
    invalid_arg "Anytime: delta must lie in (0, 1)";
  if not (t.epsilon >= 0.) then invalid_arg "Anytime: epsilon must be >= 0";
  if t.batch <= 0 then invalid_arg "Anytime: batch must be positive";
  (match t.max_samples with
  | Some n when n <= 0 -> invalid_arg "Anytime: max_samples must be positive"
  | _ -> ());
  match t.deadline with
  | Some d when not (d > 0.) -> invalid_arg "Anytime: deadline must be positive"
  | _ -> ()

type stop_reason = Converged | Samples_exhausted | Deadline_reached

let stop_reason_name = function
  | Converged -> "converged"
  | Samples_exhausted -> "samples-exhausted"
  | Deadline_reached -> "deadline-reached"

let stop_reason_of_name = function
  | "converged" -> Some Converged
  | "samples-exhausted" -> Some Samples_exhausted
  | "deadline-reached" -> Some Deadline_reached
  | _ -> None
