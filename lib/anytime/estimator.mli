(** The budgeted Monte-Carlo estimator: sample mappings from the alias
    table over Pr(mi), evaluate each sampled world once through the
    context's engine (memoised per mapping and per reformulation shape),
    and report per-tuple sample frequencies wrapped in Wilson score
    intervals at confidence 1−δ.

    Determinism contract: with a fixed [seed] and a budget that stops on
    samples or on (δ, ε) — not on a wall-clock deadline — the sampled
    stream, the stopping point and hence the whole result are reproducible
    bit-for-bit, on every engine.  [Prng.split] detaches the sampling
    stream from the seed's root stream, so callers can split further
    independent streams off the same seed. *)

(** A snapshot of the estimator's state, handed to stopping rules between
    batches. *)
type view = {
  n : int;  (** samples drawn so far *)
  z : float;  (** critical value for confidence 1−δ *)
  counts : (Urm_relalg.Value.t array, int ref) Hashtbl.t Lazy.t;
      (** occurrence counts per observed tuple, materialised from per-shape
          tallies on first force — deciders that fail a cheap test (n,
          unseen_hi) first never pay for it; read-only for deciders *)
  null_count : int;  (** samples whose world produced the empty answer *)
  unseen_hi : float;
      (** Wilson upper bound on the probability of any tuple never yet
          observed (the 0-successes-in-n bound) — the sampled analogue of
          the paper's unvisited-mass upper bound UB *)
}

(** [interval view count] the Wilson interval at [view]'s n and z. *)
val interval : view -> int -> float * float

(** [z_of_delta delta] = Φ⁻¹(1 − δ/2). *)
val z_of_delta : float -> float

type raw = {
  view : view;
  samples : int;
  shapes : int;  (** distinct reformulation shapes actually evaluated *)
  stop_reason : Budget.stop_reason;
  timings : Urm.Report.timings;
  operators : int;
  rows_produced : int;
}

(** [drive ?seed ~metrics ~budget ~decide ctx q ms] the generic sampling
    loop shared by {!run}, {!Topk.run} and {!Threshold.run}: draws in
    batches of [budget.batch], consulting [decide] after each batch until
    it returns [true] ([Converged]) or the samples/deadline budget runs
    out.  Raises [Invalid_argument] on an invalid budget or empty [ms]. *)
val drive :
  ?seed:int ->
  metrics:Urm_obs.Metrics.t ->
  budget:Budget.t ->
  decide:(view -> bool) ->
  Urm.Ctx.t ->
  Urm.Query.t ->
  Urm.Mapping.t list ->
  raw

(** [record_widths metrics raw] records the final interval spread (max and
    mean full widths over observed tuples, θ included) under [metrics]. *)
val record_widths : Urm_obs.Metrics.t -> raw -> unit

type result = {
  report : Urm.Report.t;
      (** answer: per-tuple sample frequencies and θ frequency;
          [report.intervals] carries the Wilson bounds *)
  samples : int;
  shapes : int;
  stop_reason : Budget.stop_reason;
  null_interval : float * float;  (** Wilson bounds on θ *)
  unseen_hi : float;
}

(** [result_of_raw ~metrics q raw] assembles the report (answer = sample
    frequencies, intervals over every observed tuple) and records run
    metrics plus the final interval widths. *)
val result_of_raw : metrics:Urm_obs.Metrics.t -> Urm.Query.t -> raw -> result

(** [run ?seed ?metrics ?budget ctx q ms] the plain anytime estimate:
    stops as soon as every interval (observed tuples, θ, and the
    unseen-tuple bound) has half-width ≤ [budget.epsilon], or on budget
    exhaustion.  Records under the ["anytime"] scope of [metrics]:
    ["samples"], ["shapes"], ["stop.<reason>"] counters and
    ["interval.max_width"] / ["interval.mean_width"] observations. *)
val run :
  ?seed:int ->
  ?metrics:Urm_obs.Metrics.t ->
  ?budget:Budget.t ->
  Urm.Ctx.t ->
  Urm.Query.t ->
  Urm.Mapping.t list ->
  result
