(** Anytime threshold (τ) queries: sample until every answer tuple is
    decided against τ at confidence 1−δ — lower bound ≥ τ (in the answer)
    or upper bound < τ (out) — and the unseen-tuple bound shows no
    undiscovered tuple can reach τ. *)

type result = {
  report : Urm.Report.t;
      (** answer = the tuples whose lower bound clears τ (sample
          frequencies); [report.intervals] carries their Wilson bounds *)
  samples : int;
  shapes : int;
  stop_reason : Budget.stop_reason;
  stopped_early : bool;  (** [true] iff the run stopped on {!Budget.Converged} *)
  undecided : int;
      (** observed tuples whose interval still straddles τ — 0 whenever
          [stopped_early] *)
}

(** [run ?seed ?metrics ?budget ~tau ctx q ms].  Raises [Invalid_argument]
    unless τ ∈ (0, 1]. *)
val run :
  ?seed:int ->
  ?metrics:Urm_obs.Metrics.t ->
  ?budget:Budget.t ->
  tau:float ->
  Urm.Ctx.t ->
  Urm.Query.t ->
  Urm.Mapping.t list ->
  result
