open Urm_relalg

(* The budgeted Monte-Carlo engine.

   One draw = one possible world: a mapping sampled from the alias table
   over Pr(mi) (O(1) per draw), evaluated through the context's engine.
   Evaluation is memoised at two levels — per mapping id, and beneath it
   per reformulation key — so a draw that repeats a mapping costs two
   hashtable hits, and a fresh mapping whose reformulation shape was
   already evaluated (common under fine-grained mapping sets, where most
   mappings agree on the attributes a query touches) costs one plan-free
   rewrite.  Per-tuple probabilities are sample frequencies wrapped in
   Wilson score intervals at confidence 1−δ. *)

let z_of_delta delta = Urm_util.Stats.normal_quantile (1. -. (delta /. 2.))

type view = {
  n : int;
  z : float;
  counts : (Value.t array, int ref) Hashtbl.t Lazy.t;
      (* materialised from the per-shape tallies on first force — deciders
         that fail a cheap test first (unseen_hi, n) never pay for it;
         read-only for deciders *)
  null_count : int;
  unseen_hi : float;
}

let interval view count =
  Urm_util.Stats.wilson_interval ~positives:count ~n:view.n ~z:view.z

type raw = {
  view : view;
  samples : int;
  shapes : int;  (* distinct reformulation shapes evaluated *)
  stop_reason : Budget.stop_reason;
  timings : Urm.Report.timings;
  operators : int;
  rows_produced : int;
}

(* [drive ?seed ~metrics ~budget ~decide ctx q ms] the sampling loop.
   [decide] is consulted every [budget.batch] draws (and once at the end);
   returning [true] stops the run with [Converged]. *)
let drive ?(seed = 17) ~metrics ~budget ~decide (ctx : Urm.Ctx.t) q ms =
  Budget.validate budget;
  if ms = [] then invalid_arg "Anytime: empty mapping set";
  let t0 = Urm_util.Timer.now () in
  let arr = Array.of_list ms in
  let table = Array.map (fun m -> m.Urm.Mapping.prob) arr |> Urm_util.Alias.create in
  (* [split] detaches the sampling stream from the seed stream, so further
     independent streams (e.g. parallel estimators) can be split off the
     same root without correlating with this one. *)
  let rng = Urm_util.Prng.split (Urm_util.Prng.create seed) in
  let z = z_of_delta budget.Budget.delta in
  let ctrs = Eval.fresh_counters ~metrics () in
  let sw_rewrite = Urm_util.Timer.Stopwatch.create () in
  let sw_evaluate = Urm_util.Timer.Stopwatch.create () in
  let sw_decide = Urm_util.Timer.Stopwatch.create () in
  (* Two-level answer memo: mapping id → reformulation shape → target
     tuples (the same replay discipline as the vectorized engine's per-run
     answer memo).  Draws are tallied per *shape* — O(1) per draw no matter
     how large the answers are — and the per-tuple counts the deciders need
     are materialised from the shape tallies once per batch in [view]. *)
  let by_shape : (string, Value.t array list) Hashtbl.t = Hashtbl.create 64 in
  let shape_of_mapping : (int, string) Hashtbl.t =
    Hashtbl.create (min 4096 (Array.length arr))
  in
  let shape_of m =
    match Hashtbl.find_opt shape_of_mapping m.Urm.Mapping.id with
    | Some key -> key
    | None ->
      Urm_util.Timer.Stopwatch.start sw_rewrite;
      let sq = Urm.Reformulate.source_query ctx.Urm.Ctx.target q m in
      let key = Urm.Reformulate.key sq in
      Urm_util.Timer.Stopwatch.stop sw_rewrite;
      if not (Hashtbl.mem by_shape key) then begin
        Urm_util.Timer.Stopwatch.start sw_evaluate;
        let rel =
          match sq.Urm.Reformulate.body with
          | Urm.Reformulate.Expr e -> Some (Urm.Ctx.eval ~ctrs ctx e)
          | Urm.Reformulate.Unsatisfiable | Urm.Reformulate.Trivial -> None
        in
        let tuples =
          Urm.Reformulate.result_tuples sq
            ~factor:(Urm.Reformulate.factor ctx.Urm.Ctx.catalog sq)
            rel
        in
        Urm_util.Timer.Stopwatch.stop sw_evaluate;
        Hashtbl.replace by_shape key tuples
      end;
      Hashtbl.replace shape_of_mapping m.Urm.Mapping.id key;
      key
  in
  let shape_counts : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
  let null_count = ref 0 in
  let n = ref 0 in
  let materialise_counts () =
    let counts : (Value.t array, int ref) Hashtbl.t = Hashtbl.create 64 in
    Hashtbl.iter
      (fun key c ->
        List.iter
          (fun t ->
            match Hashtbl.find_opt counts t with
            | Some r -> r := !r + !c
            | None -> Hashtbl.add counts t (ref !c))
          (Hashtbl.find by_shape key))
      shape_counts;
    counts
  in
  let cap =
    match (budget.Budget.max_samples, budget.Budget.deadline) with
    | Some s, _ -> s
    | None, Some _ -> max_int
    | None, None -> Budget.unbounded_cap
  in
  let view () =
    {
      n = !n;
      z;
      counts = lazy (materialise_counts ());
      null_count = !null_count;
      unseen_hi =
        (if !n = 0 then 1.
         else snd (Urm_util.Stats.wilson_interval ~positives:0 ~n:!n ~z));
    }
  in
  let deadline_hit () =
    match budget.Budget.deadline with
    | None -> false
    | Some d -> Urm_util.Timer.now () -. t0 >= d
  in
  let stop_reason = ref Budget.Samples_exhausted in
  (try
     while !n < cap do
       let burst = min budget.Budget.batch (cap - !n) in
       for _ = 1 to burst do
         let m = arr.(Urm_util.Alias.draw table rng) in
         let key = shape_of m in
         (match Hashtbl.find by_shape key with
         | [] -> incr null_count
         | _ -> (
           match Hashtbl.find_opt shape_counts key with
           | Some r -> incr r
           | None -> Hashtbl.add shape_counts key (ref 1)));
         incr n
       done;
       if deadline_hit () then begin
         stop_reason := Budget.Deadline_reached;
         raise Exit
       end;
       Urm_util.Timer.Stopwatch.start sw_decide;
       let converged = decide (view ()) in
       Urm_util.Timer.Stopwatch.stop sw_decide;
       if converged then begin
         stop_reason := Budget.Converged;
         raise Exit
       end
     done
   with Exit -> ());
  let samples_counter = Urm_obs.Metrics.counter metrics "samples" in
  Urm_obs.Metrics.incr ~by:!n samples_counter;
  Urm_obs.Metrics.incr ~by:(Hashtbl.length by_shape)
    (Urm_obs.Metrics.counter metrics "shapes");
  Urm_obs.Metrics.incr
    (Urm_obs.Metrics.counter metrics
       ("stop." ^ Budget.stop_reason_name !stop_reason));
  {
    view = view ();
    samples = !n;
    shapes = Hashtbl.length by_shape;
    stop_reason = !stop_reason;
    timings =
      {
        Urm.Report.rewrite = Urm_util.Timer.Stopwatch.elapsed sw_rewrite;
        plan = 0.;
        evaluate = Urm_util.Timer.Stopwatch.elapsed sw_evaluate;
        aggregate = Urm_util.Timer.Stopwatch.elapsed sw_decide;
      };
    operators = ctrs.Eval.operators;
    rows_produced = ctrs.Eval.rows_produced;
  }

(* Record the final interval spread under the metrics scope: max and mean
   full widths over the observed tuples (θ included). *)
let record_widths metrics raw =
  let widths =
    Hashtbl.fold
      (fun _ c acc ->
        let lo, hi = interval raw.view !c in
        (hi -. lo) :: acc)
      (Lazy.force raw.view.counts)
      (if raw.view.n = 0 then []
       else
         let lo, hi = interval raw.view raw.view.null_count in
         [ hi -. lo ])
  in
  match widths with
  | [] -> ()
  | _ ->
    Urm_obs.Metrics.record
      (Urm_obs.Metrics.timer metrics "interval.max_width")
      (List.fold_left Float.max 0. widths);
    Urm_obs.Metrics.record
      (Urm_obs.Metrics.timer metrics "interval.mean_width")
      (Urm_util.Stats.mean widths)

type result = {
  report : Urm.Report.t;
  samples : int;
  shapes : int;
  stop_reason : Budget.stop_reason;
  null_interval : float * float;
  unseen_hi : float;
}

(* Plain-estimate convergence: every observed tuple's interval (and θ's,
   and the bound on any still-unseen tuple) has half-width ≤ ε. *)
let width_decide ~epsilon view =
  view.n > 0
  && view.unseen_hi <= 2. *. epsilon
  &&
  let ok count =
    let lo, hi = interval view count in
    hi -. lo <= 2. *. epsilon
  in
  ok view.null_count
  && Hashtbl.fold (fun _ c acc -> acc && ok !c) (Lazy.force view.counts) true

let result_of_raw ~metrics q raw =
  let view = raw.view in
  let total = float_of_int (max 1 view.n) in
  let answer = Urm.Answer.create (Urm.Reformulate.output_header q) in
  let intervals =
    Hashtbl.fold
      (fun t c acc ->
        Urm.Answer.add answer t (float_of_int !c /. total);
        (t, interval view !c) :: acc)
      (Lazy.force view.counts) []
  in
  Urm.Answer.add_null answer (float_of_int view.null_count /. total);
  let report =
    Urm.Report.make ~intervals ~answer ~timings:raw.timings
      ~source_operators:raw.operators ~rows_produced:raw.rows_produced
      ~groups:raw.shapes ()
  in
  Urm.Report.record_metrics metrics report;
  record_widths metrics raw;
  {
    report;
    samples = raw.samples;
    shapes = raw.shapes;
    stop_reason = raw.stop_reason;
    null_interval =
      (if view.n = 0 then (0., 1.) else interval view view.null_count);
    unseen_hi = view.unseen_hi;
  }

let run ?seed ?(metrics = Urm_obs.Metrics.global) ?(budget = Budget.default)
    (ctx : Urm.Ctx.t) q ms =
  let m = Urm_obs.Metrics.scope metrics "anytime" in
  let raw =
    drive ?seed ~metrics:m ~budget
      ~decide:(width_decide ~epsilon:budget.Budget.epsilon)
      ctx q ms
  in
  result_of_raw ~metrics:m q raw
