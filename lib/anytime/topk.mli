(** Anytime top-k: sample until the set of the k most probable answer
    tuples is stable at confidence 1−δ, i.e. every tuple outside the
    candidate set (including any tuple never yet observed, via the
    0-successes Wilson bound) has an upper bound below the smallest lower
    bound inside it. *)

type result = {
  report : Urm.Report.t;
      (** answer restricted to the k winners (sample frequencies);
          [report.intervals] carries their Wilson bounds *)
  samples : int;
  shapes : int;
  stop_reason : Budget.stop_reason;
  stopped_early : bool;  (** [true] iff the run stopped on {!Budget.Converged} *)
}

(** [run ?seed ?metrics ?budget ~k ctx q ms].  On budget exhaustion the
    current best-k estimate is returned with [stopped_early = false];
    consult the intervals to see how separated it is.  Raises
    [Invalid_argument] if [k <= 0]. *)
val run :
  ?seed:int ->
  ?metrics:Urm_obs.Metrics.t ->
  ?budget:Budget.t ->
  k:int ->
  Urm.Ctx.t ->
  Urm.Query.t ->
  Urm.Mapping.t list ->
  result
