(* Anytime threshold: stop once every answer tuple is decided against τ at
   confidence 1−δ — its lower bound clears τ (in) or its upper bound falls
   below τ (out) — and the unseen-tuple bound rules out any undiscovered
   tuple reaching τ.  The answer is the "in" partition; [undecided] counts
   the tuples still straddling τ when a budget stop cut the run short. *)

type result = {
  report : Urm.Report.t;
  samples : int;
  shapes : int;
  stop_reason : Budget.stop_reason;
  stopped_early : bool;
  undecided : int;
}

let partition ~tau (view : Estimator.view) =
  Hashtbl.fold
    (fun t c (inn, undecided) ->
      let lo, hi = Estimator.interval view !c in
      if lo >= tau then ((t, !c, (lo, hi)) :: inn, undecided)
      else if hi < tau then (inn, undecided)
      else (inn, undecided + 1))
    (Lazy.force view.Estimator.counts)
    ([], 0)

let decided ~tau (view : Estimator.view) =
  view.Estimator.n > 0
  && view.Estimator.unseen_hi < tau
  && snd (partition ~tau view) = 0

let run ?seed ?(metrics = Urm_obs.Metrics.global) ?(budget = Budget.default)
    ~tau (ctx : Urm.Ctx.t) q ms =
  if not (tau > 0. && tau <= 1.) then
    invalid_arg "Anytime.Threshold.run: tau must lie in (0, 1]";
  let m = Urm_obs.Metrics.scope metrics "anytime" in
  let raw =
    Estimator.drive ?seed ~metrics:m ~budget ~decide:(decided ~tau) ctx q ms
  in
  let view = raw.Estimator.view in
  let total = float_of_int (max 1 view.Estimator.n) in
  let inn, undecided = partition ~tau view in
  let answer = Urm.Answer.create (Urm.Reformulate.output_header q) in
  let intervals =
    List.map
      (fun (t, c, bounds) ->
        Urm.Answer.add answer t (float_of_int c /. total);
        (t, bounds))
      inn
  in
  let report =
    Urm.Report.make ~intervals ~answer ~timings:raw.Estimator.timings
      ~source_operators:raw.Estimator.operators
      ~rows_produced:raw.Estimator.rows_produced ~groups:raw.Estimator.shapes
      ()
  in
  Urm.Report.record_metrics m report;
  Estimator.record_widths m raw;
  {
    report;
    samples = raw.Estimator.samples;
    shapes = raw.Estimator.shapes;
    stop_reason = raw.Estimator.stop_reason;
    stopped_early = raw.Estimator.stop_reason = Budget.Converged;
    undecided;
  }
