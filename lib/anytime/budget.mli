(** Budgets and stop reasons for anytime approximate evaluation.

    A budget combines three independent limits: a sample cap, a wall-clock
    deadline, and the statistical target (δ, ε) the stopping rules check
    between batches.  Whichever is hit first ends the run, and the
    {!stop_reason} records which one it was. *)

type t = {
  max_samples : int option;  (** stop after this many draws ([None] = uncapped) *)
  deadline : float option;
      (** stop after this many wall-clock seconds ([None] = no deadline).
          Deadline stops are inherently schedule-dependent; for bit-
          reproducible runs budget by samples or by (δ, ε) instead. *)
  delta : float;
      (** confidence parameter: intervals and stopping decisions hold with
          confidence 1−δ per tuple.  Must lie in (0, 1). *)
  epsilon : float;
      (** target half-width of the per-tuple intervals — the "run until δ
          reached" convergence test of the plain estimator (ignored by the
          top-k / threshold rules, which stop on decision stability). *)
  batch : int;  (** draws between convergence/deadline checks *)
}

(** 100k samples cap, no deadline, δ = 0.05, ε = 0.02, batch 64. *)
val default : t

(** Hard sample cap applied when [max_samples] and [deadline] are both
    [None], so an unreachable (δ, ε) cannot spin forever. *)
val unbounded_cap : int

(** Raises [Invalid_argument] on out-of-range fields. *)
val validate : t -> unit

type stop_reason =
  | Converged  (** the stopping rule proved its target at confidence 1−δ *)
  | Samples_exhausted
  | Deadline_reached

val stop_reason_name : stop_reason -> string
val stop_reason_of_name : string -> stop_reason option
