open Urm

module Table = struct
  type t = {
    id : string;
    title : string;
    headers : string list;
    rows : string list list;
    notes : string list;
  }

  let pp ppf t =
    Format.fprintf ppf "@[<v>== %s: %s ==@," t.id t.title;
    let widths =
      List.fold_left
        (fun ws row ->
          List.mapi
            (fun i cell ->
              let prev = try List.nth ws i with _ -> 0 in
              max prev (String.length cell))
            row)
        (List.map String.length t.headers)
        t.rows
    in
    let print_row row =
      let cells =
        List.mapi
          (fun i cell ->
            let w = try List.nth widths i with _ -> String.length cell in
            cell ^ String.make (max 0 (w - String.length cell)) ' ')
          row
      in
      Format.fprintf ppf "  %s@," (String.concat "  " cells)
    in
    print_row t.headers;
    print_row (List.map (fun w -> String.make w '-') widths);
    List.iter print_row t.rows;
    List.iter (fun n -> Format.fprintf ppf "  note: %s@," n) t.notes;
    Format.fprintf ppf "@]"
end

type config = {
  seed : int;
  scale : float;
  h : int;
  h_sweep : int list;
  scale_sweep : float list;
  k_sweep : int list;
  runs : int;
  jobs : int;
  engine : Urm_relalg.Compile.engine;
}

let default =
  {
    seed = 42;
    scale = 0.03;
    h = 100;
    h_sweep = [ 100; 200; 300; 400; 500 ];
    scale_sweep = [ 0.2; 0.4; 0.6; 0.8; 1.0 ];
    k_sweep = [ 1; 5; 10; 15; 20 ];
    runs = 1;
    jobs = 1;
    engine = Urm_relalg.Compile.Vectorized;
  }

let quick =
  {
    seed = 7;
    scale = 0.01;
    h = 20;
    h_sweep = [ 10; 20 ];
    scale_sweep = [ 0.5; 1.0 ];
    k_sweep = [ 1; 3 ];
    runs = 1;
    jobs = 1;
    engine = Urm_relalg.Compile.Vectorized;
  }

(* ------------------------------------------------------------------ *)

let s_float f = Printf.sprintf "%.4f" f
let s_int = string_of_int

(* Domain pools are memoised per jobs count so a sweep reuses one set of
   worker domains across all its data points. *)
let pool_cache : (int, Urm_par.Pool.t) Hashtbl.t = Hashtbl.create 4

let pool jobs =
  match Hashtbl.find_opt pool_cache jobs with
  | Some p -> p
  | None ->
    let p = Urm_par.Pool.create ~jobs () in
    Hashtbl.replace pool_cache jobs p;
    p

let run_alg cfg alg ctx q ms =
  if cfg.jobs <= 1 then Algorithms.run alg ctx q ms
  else Urm_par.Drivers.run ~pool:(pool cfg.jobs) alg ctx q ms

let time_alg cfg alg ctx q ms =
  let report = ref None in
  let secs =
    Urm_util.Timer.repeat ~warmup:0 ~runs:cfg.runs (fun () ->
        report := Some (run_alg cfg alg ctx q ms))
  in
  (secs, Option.get !report)

(* Pipelines are memoised per (seed, scale) within one experiment run so the
   sweeps reuse generated instances and cached mapping sets. *)
let pipeline_cache : (int * int, Pipeline.t) Hashtbl.t = Hashtbl.create 8

let pipeline cfg ~scale =
  let key = (cfg.seed, int_of_float (scale *. 1_000_000.)) in
  match Hashtbl.find_opt pipeline_cache key with
  | Some p -> p
  | None ->
    let p = Pipeline.create ~seed:cfg.seed ~scale () in
    Hashtbl.replace pipeline_cache key p;
    p

let setup cfg ?(scale = 1.0) ?h (target, q) =
  let h = Option.value ~default:cfg.h h in
  let p = pipeline cfg ~scale:(cfg.scale *. scale) in
  (Pipeline.ctx ~engine:cfg.engine p target, q, Pipeline.mappings p target ~h)

(* ------------------------------------------------------------------ *)

let fig9a cfg =
  let p = pipeline cfg ~scale:cfg.scale in
  let rows =
    List.map
      (fun h ->
        s_int h
        :: List.map
             (fun (_, target) ->
               s_float (Overlap.o_ratio (Pipeline.mappings p target ~h)))
             Targets.all)
      cfg.h_sweep
  in
  {
    Table.id = "fig9a";
    title = "o-ratio of the possible-mapping sets vs number of mappings";
    headers = "h" :: List.map fst Targets.all;
    rows;
    notes =
      [ "paper: 73%-79% for Excel across 100..500 mappings; 79/68/72% at h=100" ];
  }

let fig10a cfg =
  let rows =
    List.map
      (fun (name, target, q) ->
        let ctx, q, ms = setup cfg (target, q) in
        let _, r = time_alg cfg Algorithms.Basic ctx q ms in
        let t = r.Report.timings in
        let eval = t.Report.evaluate and agg = t.Report.aggregate in
        let rewrite = t.Report.rewrite in
        let total = Report.total t in
        [
          name; s_float rewrite; s_float eval; s_float agg;
          Printf.sprintf "%.1f%%" (100. *. eval /. Float.max 1e-9 total);
        ])
      Queries.all
  in
  {
    Table.id = "fig10a";
    title = "basic: time breakdown (rewrite / evaluation / aggregation)";
    headers = [ "query"; "rewrite(s)"; "evaluate(s)"; "aggregate(s)"; "eval%" ];
    rows;
    notes = [ "paper: evaluation dominates (>80%) for all ten queries" ];
  }

let simple_algs = [ Algorithms.Basic; Algorithms.Ebasic; Algorithms.Emqo ]
let sharing_algs = [ Algorithms.Ebasic; Algorithms.Qsharing; Algorithms.Osharing Eunit.Sef ]

let sweep_table cfg ~id ~title ~axis ~points ~notes ~algs ~run =
  let headers = axis :: List.map Algorithms.name algs in
  let rows =
    List.map
      (fun point ->
        let label, ctx, q, ms = run point in
        label
        :: List.map (fun alg -> s_float (fst (time_alg cfg alg ctx q ms))) algs)
      points
  in
  { Table.id; title; headers; rows; notes }

let fig10b cfg =
  sweep_table cfg ~id:"fig10b"
    ~title:"simple solutions vs database size (Q4)"
    ~axis:"rows(D)" ~points:cfg.scale_sweep ~algs:simple_algs
    ~notes:[ "paper: e-basic < e-MQO < basic at every size" ]
    ~run:(fun mult ->
      let ctx, q, ms = setup cfg ~scale:mult Queries.default in
      (s_int (Urm_relalg.Catalog.total_rows ctx.Ctx.catalog), ctx, q, ms))

let fig10c cfg =
  sweep_table cfg ~id:"fig10c"
    ~title:"simple solutions vs number of mappings (Q4)"
    ~axis:"h" ~points:cfg.h_sweep ~algs:simple_algs
    ~notes:
      [ "paper: e-MQO rises sharply with |M| and falls behind basic past ~300" ]
    ~run:(fun h ->
      let ctx, q, ms = setup cfg ~h Queries.default in
      (s_int h, ctx, q, ms))

let fig11a cfg =
  let rows =
    List.map
      (fun (name, target, q) ->
        let ctx, q, ms = setup cfg (target, q) in
        name
        :: List.map
             (fun alg -> s_float (fst (time_alg cfg alg ctx q ms)))
             sharing_algs)
      Queries.all
  in
  {
    Table.id = "fig11a";
    title = "e-basic vs q-sharing vs o-sharing on Q1–Q10";
    headers = "query" :: List.map Algorithms.name sharing_algs;
    rows;
    notes =
      [
        "paper: q-sharing ≈16% faster than e-basic on average; o-sharing best";
      ];
  }

let fig11b cfg =
  sweep_table cfg ~id:"fig11b"
    ~title:"sharing solutions vs database size (Q4)"
    ~axis:"rows(D)" ~points:cfg.scale_sweep ~algs:sharing_algs
    ~notes:[ "paper: o-sharing scales best with |D|" ]
    ~run:(fun mult ->
      let ctx, q, ms = setup cfg ~scale:mult Queries.default in
      (s_int (Urm_relalg.Catalog.total_rows ctx.Ctx.catalog), ctx, q, ms))

let fig11c cfg =
  sweep_table cfg ~id:"fig11c"
    ~title:"sharing solutions vs number of mappings (Q4)"
    ~axis:"h" ~points:cfg.h_sweep ~algs:sharing_algs
    ~notes:[ "paper: o-sharing least sensitive to |M|" ]
    ~run:(fun h ->
      let ctx, q, ms = setup cfg ~h Queries.default in
      (s_int h, ctx, q, ms))

let fig11d cfg =
  sweep_table cfg ~id:"fig11d"
    ~title:"sharing solutions vs number of selection operators (Excel PO)"
    ~axis:"#selections"
    ~points:[ 1; 2; 3; 4; 5 ]
    ~algs:sharing_algs
    ~notes:
      [
        "paper: o-sharing ahead for ≥2 operators; slight u-trace overhead at 1";
      ]
    ~run:(fun n ->
      let q = Sweeps.selections n in
      let ctx, q, ms = setup cfg (Targets.excel, q) in
      (s_int n, ctx, q, ms))

let fig11e cfg =
  sweep_table cfg ~id:"fig11e"
    ~title:"sharing solutions vs number of Cartesian products (PO self-joins)"
    ~axis:"#products"
    ~points:[ 1; 2; 3 ]
    ~algs:sharing_algs
    ~notes:[ "paper: o-sharing best from two products on" ]
    ~run:(fun n ->
      let q = Sweeps.self_joins n in
      let ctx, q, ms = setup cfg (Targets.excel, q) in
      (s_int n, ctx, q, ms))

let strategies = [ Eunit.Random; Eunit.Snf; Eunit.Sef ]

let fig11f cfg =
  let queries =
    List.filter (fun (n, _, _) -> List.mem n [ "Q1"; "Q2"; "Q3"; "Q4"; "Q5" ]) Queries.all
  in
  let rows =
    List.map
      (fun (name, target, q) ->
        let ctx, q, ms = setup cfg (target, q) in
        name
        :: List.map
             (fun st ->
               s_float (fst (time_alg cfg (Algorithms.Osharing st) ctx q ms)))
             strategies)
      queries
  in
  {
    Table.id = "fig11f";
    title = "operator selection strategies on Q1–Q5 (Excel)";
    headers = "query" :: List.map (fun s -> Eunit.strategy_name s) strategies;
    rows;
    notes = [ "paper: SNF and SEF far ahead of Random; SEF ≤ SNF" ];
  }

let tab4 cfg =
  let ctx, q, ms = setup cfg Queries.default in
  let strategy_rows =
    List.map
      (fun st ->
        let secs, r = time_alg cfg (Algorithms.Osharing st) ctx q ms in
        [ Eunit.strategy_name st; s_float secs; s_int r.Report.source_operators ])
      strategies
  in
  let emqo_secs, emqo = time_alg cfg Algorithms.Emqo ctx q ms in
  {
    Table.id = "tab4";
    title = "operator selection strategies (Q4): time and source operators";
    headers = [ "strategy"; "time(s)"; "#source operators" ];
    rows =
      strategy_rows
      @ [ [ "e-MQO (optimal ops)"; s_float emqo_secs; s_int emqo.Report.source_operators ] ];
    notes =
      [
        "paper: Random 215s/433 ops, SNF 58/135, SEF 55/132, e-MQO 320/112";
        "shape: Random executes the most operators; SEF ≤ SNF; e-MQO fewest ops but slow";
      ];
  }

let fig12 cfg ~id ~qname =
  let target, q = Queries.by_name qname in
  let ctx, q, ms = setup cfg (target, q) in
  let osharing_secs, _ = time_alg cfg (Algorithms.Osharing Eunit.Sef) ctx q ms in
  let rows =
    List.map
      (fun k ->
        let report = ref None in
        let secs =
          Urm_util.Timer.repeat ~warmup:0 ~runs:cfg.runs (fun () ->
              report := Some (Topk.run ~k ctx q ms))
        in
        let r = Option.get !report in
        [
          s_int k; s_float secs; s_float osharing_secs;
          s_int r.Topk.visited_eunits;
          (if r.Topk.stopped_early then "yes" else "no");
        ])
      cfg.k_sweep
  in
  {
    Table.id = id;
    title = Printf.sprintf "top-k vs o-sharing (%s)" qname;
    headers = [ "k"; "top-k(s)"; "o-sharing(s)"; "e-units"; "early stop" ];
    rows;
    notes = [ "paper: top-k faster for small k; converges to o-sharing as k grows" ];
  }

let fig12a cfg = fig12 cfg ~id:"fig12a" ~qname:"Q4"
let fig12b cfg = fig12 cfg ~id:"fig12b" ~qname:"Q7"
let fig12c cfg = fig12 cfg ~id:"fig12c" ~qname:"Q10"

(* ------------------------------------------------------------------ *)
(* Ablations beyond the paper. *)

let abl_memo cfg =
  let queries = [ "Q3"; "Q4"; "Q5"; "Q9" ] in
  let rows =
    List.map
      (fun qname ->
        let target, q = Queries.by_name qname in
        let ctx, q, ms = setup cfg (target, q) in
        let run ~use_memo =
          let r = ref None in
          let secs =
            Urm_util.Timer.repeat ~warmup:0 ~runs:cfg.runs (fun () ->
                r := Some (Osharing.run_with_stats ~use_memo ctx q ms))
          in
          let report, stats = Option.get !r in
          (secs, report.Report.source_operators, stats.Osharing.memo_hits)
        in
        let t_on, ops_on, hits = run ~use_memo:true in
        let t_off, ops_off, _ = run ~use_memo:false in
        [ qname; s_float t_on; s_int ops_on; s_int hits; s_float t_off; s_int ops_off ])
      queries
  in
  {
    Table.id = "abl-memo";
    title = "ablation: o-sharing cross-branch operator memoisation";
    headers = [ "query"; "memo(s)"; "ops"; "hits"; "no-memo(s)"; "ops" ];
    rows;
    notes = [ "memoisation should never execute more operators" ];
  }

let abl_index cfg =
  let queries = [ "Q1"; "Q4"; "Q6" ] in
  let rows =
    List.map
      (fun qname ->
        let target, q = Queries.by_name qname in
        let ctx, q, ms = setup cfg (target, q) in
        let with_index, _ = time_alg cfg Algorithms.Ebasic ctx q ms in
        Urm_relalg.Catalog.set_indexing ctx.Ctx.catalog false;
        let without, _ = time_alg cfg Algorithms.Ebasic ctx q ms in
        Urm_relalg.Catalog.set_indexing ctx.Ctx.catalog true;
        [ qname; s_float with_index; s_float without ])
      queries
  in
  {
    Table.id = "abl-index";
    title = "ablation: hash indexes in the source engine (e-basic)";
    headers = [ "query"; "indexed(s)"; "scan(s)" ];
    rows;
    notes = [];
  }

let abl_stats cfg =
  let rows =
    List.map
      (fun qname ->
        let target, q = Queries.by_name qname in
        let p = pipeline cfg ~scale:cfg.scale in
        let ctx = Pipeline.ctx ~engine:cfg.engine p target in
        let ms = Pipeline.mappings p target ~h:cfg.h in
        let distinct = Ebasic.distinct_source_queries ctx q ms in
        let exprs =
          List.filter_map
            (fun (sq, _) ->
              match sq.Reformulate.body with
              | Reformulate.Expr e -> Some e
              | _ -> None)
            distinct
        in
        let run_with stats =
          let ctrs = Urm_relalg.Eval.fresh_counters () in
          let plan, plan_t =
            Urm_util.Timer.time (fun () ->
                Urm_mqo.Planner.plan ?stats ctx.Ctx.catalog exprs)
          in
          let _, exec_t =
            Urm_util.Timer.time (fun () ->
                Urm_mqo.Planner.execute_iter ~ctrs ctx.Ctx.catalog plan
                  ~f:(fun _ _ _ -> ()))
          in
          (plan_t, exec_t, ctrs.Urm_relalg.Eval.operators)
        in
        let stats = Urm_relalg.Stats_est.build ctx.Ctx.catalog in
        let pt0, et0, ops0 = run_with None in
        let pt1, et1, ops1 = run_with (Some stats) in
        [
          qname; s_float pt0; s_float et0; s_int ops0; s_float pt1; s_float et1;
          s_int ops1;
        ])
      [ "Q3"; "Q4"; "Q9" ]
  in
  {
    Table.id = "abl-stats";
    title = "ablation: MQO cost model with fixed vs statistics-based selectivities";
    headers =
      [ "query"; "plan(s)"; "exec(s)"; "ops"; "plan+stats(s)"; "exec(s)"; "ops" ];
    rows;
    notes = [ "statistics should never increase executed operators noticeably" ];
  }

let abl_ptree cfg =
  let target, q = Queries.default in
  let p = pipeline cfg ~scale:cfg.scale in
  let rows =
    List.map
      (fun h ->
        let ms = Pipeline.mappings p target ~h in
        let t_tree =
          Urm_util.Timer.repeat ~warmup:1 ~runs:(max 3 cfg.runs) (fun () ->
              Ptree.partition target q ms)
        in
        let t_naive =
          Urm_util.Timer.repeat ~warmup:1 ~runs:(max 3 cfg.runs) (fun () ->
              Ptree.partition_naive target q ms)
        in
        [ s_int h; s_float t_tree; s_float t_naive ])
      cfg.h_sweep
  in
  {
    Table.id = "abl-ptree";
    title = "ablation: partition tree vs naive group-by partitioning (Q4)";
    headers = [ "h"; "tree(s)"; "naive(s)" ];
    rows;
    notes = [];
  }

(* ------------------------------------------------------------------ *)

let all =
  [
    ("fig9a", fig9a);
    ("fig10a", fig10a);
    ("fig10b", fig10b);
    ("fig10c", fig10c);
    ("fig11a", fig11a);
    ("fig11b", fig11b);
    ("fig11c", fig11c);
    ("fig11d", fig11d);
    ("fig11e", fig11e);
    ("fig11f", fig11f);
    ("tab4", tab4);
    ("fig12a", fig12a);
    ("fig12b", fig12b);
    ("fig12c", fig12c);
    ("abl-memo", abl_memo);
    ("abl-index", abl_index);
    ("abl-stats", abl_stats);
    ("abl-ptree", abl_ptree);
  ]

let run_by_id cfg id = (List.assoc id all) cfg
