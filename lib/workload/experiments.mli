(** The experiment harness: one runner per table/figure of the paper's
    evaluation (§VIII) plus the ablations listed in DESIGN.md.  Each runner
    produces a printable {!Table.t}; `bench/main.exe` executes them all and
    EXPERIMENTS.md records measured-vs-paper shapes. *)

module Table : sig
  type t = {
    id : string;  (** e.g. ["fig11a"] *)
    title : string;
    headers : string list;
    rows : string list list;
    notes : string list;
  }

  val pp : Format.formatter -> t -> unit
end

type config = {
  seed : int;
  scale : float;  (** source-instance scale of the default setup *)
  h : int;  (** default number of possible mappings *)
  h_sweep : int list;  (** mapping-count axis (Figs. 9(a), 10(c), 11(c)) *)
  scale_sweep : float list;
      (** database-size axis, as multipliers of [scale] (Figs. 10(b), 11(b)) *)
  k_sweep : int list;  (** top-k axis (Fig. 12) *)
  runs : int;  (** timing repetitions per data point *)
  jobs : int;
      (** evaluation domains; [> 1] routes the exact algorithms through
          {!Urm_par.Drivers.run} (answers are bit-identical to [jobs = 1],
          see lib/par) *)
  engine : Urm_relalg.Compile.engine;
      (** query-execution engine for the contexts built by the experiments
          (default compiled; see {!Urm_relalg.Compile}) *)
}

(** seed 42, scale 0.03, h = 100, h_sweep 100..500, scale 0.2×..1×,
    k ∈ {1,5,10,15,20}, runs 1, jobs 1. *)
val default : config

(** [run_alg cfg alg ctx q ms] one evaluation under [cfg]: sequential
    {!Urm.Algorithms.run} for [cfg.jobs <= 1], the parallel driver over a
    memoised [cfg.jobs]-domain pool otherwise. *)
val run_alg :
  config ->
  Urm.Algorithms.t ->
  Urm.Ctx.t ->
  Urm.Query.t ->
  Urm.Mapping.t list ->
  Urm.Report.t

(** A miniature configuration for tests (scale 0.01, h = 20, short sweeps). *)
val quick : config

(** All experiments in DESIGN.md order:
    fig9a fig10a fig10b fig10c fig11a fig11b fig11c fig11d fig11e fig11f
    tab4 fig12a fig12b fig12c abl-memo abl-index abl-stats abl-ptree. *)
val all : (string * (config -> Table.t)) list

(** [run_by_id cfg id] raises [Not_found] for unknown ids. *)
val run_by_id : config -> string -> Table.t
