(** End-to-end experiment pipeline: source instance generation, matching,
    mapping generation (cached per target schema and h), and context
    assembly.  One [t] corresponds to one experimental setup (seed +
    scale). *)

type t

(** [create ?seed ?scale ()] generates the source instance.
    [scale] defaults to {!Urm_tpch.Gen.default_scale}. *)
val create : ?seed:int -> ?scale:float -> unit -> t

val scale : t -> float
val seed : t -> int

(** Total tuples in the source instance (the "database size" axis). *)
val instance_rows : t -> int

(** [ctx ?engine p target] evaluation context for one target schema.
    [engine] selects the execution engine (default vectorized). *)
val ctx :
  ?engine:Urm_relalg.Compile.engine -> t -> Urm_relalg.Schema.t -> Urm.Ctx.t

(** [mappings p target ~h] the h-best possible mappings for [target]
    (memoised: repeated calls with the same target name and [h] are free;
    a larger cached [h] also serves smaller requests by prefix). *)
val mappings : t -> Urm_relalg.Schema.t -> h:int -> Urm.Mapping.t list

(** [synthetic_mappings p target ~h] a huge mapping set (h up to 10⁶) for
    the anytime experiments, built with {!Urm.Mapgen.synthetic} from the
    matcher's candidates (memoised like {!mappings}; may return fewer than
    [h] distinct mappings).  Deterministic from the pipeline seed. *)
val synthetic_mappings : t -> Urm_relalg.Schema.t -> h:int -> Urm.Mapping.t list

(** [run p alg ~query ~target ~h] convenience wrapper: build the context and
    mappings, then run the algorithm. *)
val run :
  t ->
  Urm.Algorithms.t ->
  query:Urm.Query.t ->
  target:Urm_relalg.Schema.t ->
  h:int ->
  Urm.Report.t
