type t = {
  catalog : Urm_relalg.Catalog.t;
  scale : float;
  seed : int;
  mapping_cache : (string * int, Urm.Mapping.t list) Hashtbl.t;
}

let create ?(seed = 42) ?(scale = Urm_tpch.Gen.default_scale) () =
  {
    catalog = Urm_tpch.Gen.generate ~seed ~scale ();
    scale;
    seed;
    mapping_cache = Hashtbl.create 8;
  }

let scale p = p.scale
let seed p = p.seed
let instance_rows p = Urm_relalg.Catalog.total_rows p.catalog

let ctx ?engine p target =
  Urm.Ctx.make ?engine ~catalog:p.catalog ~source:Urm_tpch.Gen.schema ~target ()

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let mappings p target ~h =
  let name = target.Urm_relalg.Schema.sname in
  match Hashtbl.find_opt p.mapping_cache (name, h) with
  | Some ms -> ms
  | None ->
    (* A cached larger set serves smaller h by prefix + renormalisation
       (Murty enumerates best-first, so the prefix is exactly the h-best). *)
    let from_larger =
      Hashtbl.fold
        (fun (n, h') ms acc ->
          if String.equal n name && h' > h then
            match acc with
            | Some (best_h, _) when best_h <= h' -> acc
            | _ -> Some (h', ms)
          else acc)
        p.mapping_cache None
    in
    let ms =
      match from_larger with
      | Some (_, larger) -> Urm.Mapping.normalize (take h larger)
      | None ->
        Urm.Mapgen.generate ~h ~source:Urm_tpch.Gen.schema ~target ()
    in
    Hashtbl.replace p.mapping_cache (name, h) ms;
    ms

let synthetic_mappings p target ~h =
  let name = "synthetic:" ^ target.Urm_relalg.Schema.sname in
  match Hashtbl.find_opt p.mapping_cache (name, h) with
  | Some ms -> ms
  | None ->
    let cands =
      Urm_matcher.Match.candidates ~source:Urm_tpch.Gen.schema ~target ()
    in
    let ms = Urm.Mapgen.synthetic ~seed:p.seed ~h cands in
    Hashtbl.replace p.mapping_cache (name, h) ms;
    ms

let run p alg ~query ~target ~h =
  Urm.Algorithms.run alg (ctx p target) query (mappings p target ~h)
