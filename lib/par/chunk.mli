(** Contiguous index chunking for the drivers that batch their items
    (e-MQO plans one shared MQO plan per chunk). *)

(** [ranges ~chunks n] at most [chunks] balanced, contiguous, half-open
    [(lo, hi)] ranges covering [0..n-1] in order; fewer when [n < chunks],
    none when [n = 0]. *)
val ranges : chunks:int -> int -> (int * int) array

(** [split ~chunks l] the elements of [l] grouped by {!ranges}, order
    preserved: [Array.to_list (split ~chunks l) |> List.concat = l]. *)
val split : chunks:int -> 'a list -> 'a list array
