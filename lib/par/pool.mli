(** A fixed-size pool of worker domains for fanning out the evaluation
    loops (ISSUE: domain-parallel mapping evaluation).

    The pool is created once and reused across rounds: {!map_reduce}
    publishes an indexed batch of items, the caller and the worker domains
    drain it cooperatively through an atomic cursor (so a slow item does
    not idle the other domains), and the per-item results are folded {e on
    the calling domain, in ascending item order}.  That ascending reduce is
    the determinism contract the parallel drivers build on: whatever the
    scheduling, probabilities reach the accumulator in the same order.

    A pool of [jobs = n] uses [n] domains in total: the caller counts as
    domain 0 and [n - 1] domains are spawned, so [jobs = 1] spawns nothing
    and degenerates to an inline loop.  Rounds are serialised by an
    internal lock — concurrent {!map_reduce} calls (e.g. from the query
    service's worker domains sharing one pool) queue up rather than
    interleave.  [map_reduce] must not be called from inside an item of the
    same pool (no reentrancy); doing so deadlocks the round lock.

    Observability: the pool records under the ["par/"] scope of its
    metrics registry — ["par/rounds"] (batches run),
    ["par/domain<i>/busy"] (items executed by domain [i]) and
    ["par/domain<i>/steals"] (items domain [i] executed that were not its
    own by the static [i mod jobs] assignment — a measure of how much the
    dynamic cursor rebalanced skewed item costs). *)

type t

(** [create ?metrics ~jobs ()] spawns [jobs - 1] worker domains.  Raises
    [Invalid_argument] if [jobs < 1].  The pool registers an [at_exit]
    shutdown so forgotten pools do not leave domains running. *)
val create : ?metrics:Urm_obs.Metrics.t -> jobs:int -> unit -> t

val jobs : t -> int

(** [map_reduce t ~n ~map ~init ~reduce] evaluates [map i] for every
    [i < n] across the pool's domains, then folds
    [reduce acc i (map i)] on the calling domain in ascending [i].
    If any [map i] raises, the first exception is re-raised on the caller
    after the round drains (remaining items still run).  [map] must be
    safe to call from any domain; the results are published to the caller
    with a happens-before edge, so no extra synchronisation is needed. *)
val map_reduce :
  t ->
  n:int ->
  map:(int -> 'a) ->
  init:'acc ->
  reduce:('acc -> int -> 'a -> 'acc) ->
  'acc

(** Join the worker domains.  Idempotent; implied at process exit.  Must
    not be called while a round is in flight. *)
val shutdown : t -> unit
