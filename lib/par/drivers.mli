(** Domain-parallel drivers for the evaluation loops.

    Each driver fans the algorithm's independent work items over a
    {!Pool} and merges the per-item contributions {e in ascending item
    order}.  Because one item adds every output tuple at most once (plain
    source queries end in a Distinct over the mapped outputs; grouped
    rows are distinct by their group keys), replaying item totals in
    order reproduces the sequential per-tuple float-addition sequence
    exactly — answers are bit-identical to the sequential algorithms for
    any [jobs], not merely equal within [Prob.eps].  The items:

    - basic: one item per mapping;
    - e-basic: one item per distinct source query;
    - e-MQO: one chunk of distinct source queries per domain (one shared
      MQO plan per chunk), merged per {e unit} in ascending order, which
      the restructured sequential {!Urm.Emqo.run} matches;
    - q-sharing: one item per partition-tree representative;
    - o-sharing: one item per root partition of the u-trace, in
      {!Urm.Eunit.branches} visit order; every item replays its leaves in
      emission order.  Each root partition evaluates in a fresh
      environment, so the cross-branch memo does not span partitions
      (operator/memo counters differ from the sequential run; answers do
      not).  The [Random] strategy draws from per-partition generators
      and is only guaranteed equal within [Prob.eps]; [Snf]/[Sef] are
      bit-identical.

    Timing attribution differs from the sequential reports: [rewrite] is
    the serial pre-phase (clustering / partitioning), [evaluate] the
    wall-clock of the parallel section, [aggregate] the ascending merge,
    and [plan] (e-MQO) the summed per-chunk planning time.  Counters are
    recorded under the same algorithm scopes as the sequential runs. *)

val basic :
  ?metrics:Urm_obs.Metrics.t ->
  pool:Pool.t ->
  Urm.Ctx.t ->
  Urm.Query.t ->
  Urm.Mapping.t list ->
  Urm.Report.t

val ebasic :
  ?metrics:Urm_obs.Metrics.t ->
  pool:Pool.t ->
  Urm.Ctx.t ->
  Urm.Query.t ->
  Urm.Mapping.t list ->
  Urm.Report.t

val emqo :
  ?metrics:Urm_obs.Metrics.t ->
  pool:Pool.t ->
  Urm.Ctx.t ->
  Urm.Query.t ->
  Urm.Mapping.t list ->
  Urm.Report.t

val qsharing :
  ?metrics:Urm_obs.Metrics.t ->
  pool:Pool.t ->
  Urm.Ctx.t ->
  Urm.Query.t ->
  Urm.Mapping.t list ->
  Urm.Report.t

val osharing :
  ?strategy:Urm.Eunit.strategy ->
  ?seed:int ->
  ?use_memo:bool ->
  ?metrics:Urm_obs.Metrics.t ->
  pool:Pool.t ->
  Urm.Ctx.t ->
  Urm.Query.t ->
  Urm.Mapping.t list ->
  Urm.Report.t

(** [run ?metrics ~pool alg ctx q ms] dispatches [alg] to its parallel
    driver.  With [Pool.jobs pool = 1] (and for [Topk], whose
    early-stopping traversal is inherently sequential) it falls through
    to {!Urm.Algorithms.run} — the untouched sequential paths. *)
val run :
  ?metrics:Urm_obs.Metrics.t ->
  pool:Pool.t ->
  Urm.Algorithms.t ->
  Urm.Ctx.t ->
  Urm.Query.t ->
  Urm.Mapping.t list ->
  Urm.Report.t
