let ranges ~chunks n =
  if chunks < 1 then invalid_arg "Chunk.ranges: chunks must be >= 1";
  if n < 0 then invalid_arg "Chunk.ranges: n must be >= 0";
  let k = min chunks n in
  Array.init k (fun c -> (c * n / k, (c + 1) * n / k))

let split ~chunks l =
  let arr = Array.of_list l in
  Array.map
    (fun (lo, hi) -> Array.to_list (Array.sub arr lo (hi - lo)))
    (ranges ~chunks (Array.length arr))
