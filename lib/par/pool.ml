(* One published batch of work.  [next] is the dispatch cursor (domains
   race on it with fetch-and-add); [remaining] counts completions and is
   guarded by the pool mutex so the caller can block on [done_cv]. *)
type round = {
  body : int -> unit;
  n : int;
  next : int Atomic.t;
  mutable remaining : int;
  failed : (exn * Printexc.raw_backtrace) option Atomic.t;
}

type t = {
  jobs : int;
  round_lock : Mutex.t;  (* serialises map_reduce rounds *)
  m : Mutex.t;  (* guards current/gen/stopping/remaining *)
  work_cv : Condition.t;  (* workers: a new round was published *)
  done_cv : Condition.t;  (* caller: the round's last item completed *)
  mutable current : round option;
  mutable gen : int;  (* bumped per round so workers never re-enter one *)
  mutable stopping : bool;
  mutable domains : unit Domain.t array;
  busy : Urm_obs.Metrics.counter array;
  steals : Urm_obs.Metrics.counter array;
  rounds : Urm_obs.Metrics.counter;
}

let jobs t = t.jobs

(* Drain the round's cursor from domain [w] (0 = the caller).  An item
   belongs to domain [i mod jobs]; executing someone else's item is a
   steal — the dynamic cursor rebalancing a skewed static assignment. *)
let drain t w r =
  let rec go () =
    let i = Atomic.fetch_and_add r.next 1 in
    if i < r.n then begin
      (try r.body i
       with exn ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set r.failed None (Some (exn, bt))));
      Urm_obs.Metrics.incr t.busy.(w);
      if i mod t.jobs <> w then Urm_obs.Metrics.incr t.steals.(w);
      Mutex.lock t.m;
      r.remaining <- r.remaining - 1;
      if r.remaining = 0 then Condition.broadcast t.done_cv;
      Mutex.unlock t.m;
      go ()
    end
  in
  go ()

let worker t w () =
  let last = ref 0 in
  let rec loop () =
    Mutex.lock t.m;
    while
      (not t.stopping) && (Option.is_none t.current || t.gen = !last)
    do
      Condition.wait t.work_cv t.m
    done;
    if t.stopping then Mutex.unlock t.m
    else
      match t.current with
      | None -> assert false
      | Some r ->
        last := t.gen;
        Mutex.unlock t.m;
        drain t w r;
        loop ()
  in
  loop ()

let shutdown t =
  Mutex.lock t.m;
  let ds = t.domains in
  t.domains <- [||];
  t.stopping <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.m;
  Array.iter Domain.join ds

let create ?(metrics = Urm_obs.Metrics.global) ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let scope = Urm_obs.Metrics.scope metrics "par" in
  let dom i = Urm_obs.Metrics.scope scope (Printf.sprintf "domain%d" i) in
  let t =
    {
      jobs;
      round_lock = Mutex.create ();
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      current = None;
      gen = 0;
      stopping = false;
      domains = [||];
      busy = Array.init jobs (fun i -> Urm_obs.Metrics.counter (dom i) "busy");
      steals =
        Array.init jobs (fun i -> Urm_obs.Metrics.counter (dom i) "steals");
      rounds = Urm_obs.Metrics.counter scope "rounds";
    }
  in
  t.domains <- Array.init (jobs - 1) (fun i -> Domain.spawn (worker t (i + 1)));
  at_exit (fun () -> shutdown t);
  t

let run_round t body n =
  Mutex.lock t.round_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.round_lock) @@ fun () ->
  Urm_obs.Metrics.incr t.rounds;
  let r =
    { body; n; next = Atomic.make 0; remaining = n; failed = Atomic.make None }
  in
  if t.jobs = 1 || n <= 1 then drain t 0 r
  else begin
    Mutex.lock t.m;
    t.current <- Some r;
    t.gen <- t.gen + 1;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.m;
    drain t 0 r;
    Mutex.lock t.m;
    while r.remaining > 0 do
      Condition.wait t.done_cv t.m
    done;
    t.current <- None;
    Mutex.unlock t.m
  end;
  match Atomic.get r.failed with
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ()

let map_reduce t ~n ~map ~init ~reduce =
  let results = Array.make n None in
  run_round t (fun i -> results.(i) <- Some (map i)) n;
  let acc = ref init in
  Array.iteri
    (fun i -> function
      | Some v -> acc := reduce !acc i v
      | None -> assert false (* run_round raised already *))
    results;
  !acc
