open Urm

(* Fan [n] items over the pool and return [(item answer, operators,
   rows_produced)] parts in ascending item order. *)
let fan pool ~n ~item =
  List.rev
    (Pool.map_reduce pool ~n ~map:item ~init:[]
       ~reduce:(fun parts _ v -> v :: parts))

(* Ascending merge of per-item parts: the determinism contract (see the
   interface) lives in this fold staying in item order. *)
let merge_parts header parts =
  let acc = Answer.create header in
  let ops = ref 0 and rows = ref 0 in
  List.iter
    (fun (a, o, r) ->
      Answer.merge_into acc a;
      ops := !ops + o;
      rows := !rows + r)
    parts;
  (acc, !ops, !rows)

let finish m ~engine ~answer ~rewrite ~plan ~evaluate ~aggregate ~ops ~rows
    ~groups =
  let report =
    {
      Report.answer;
      intervals = None;
      timings = { Report.rewrite; plan; evaluate; aggregate };
      source_operators = ops;
      rows_produced = rows;
      groups;
      engine;
    }
  in
  Report.record_metrics m report;
  report

(* basic and q-sharing share the mapping-per-item fan (q-sharing is basic
   over the partition representatives). *)
let fan_mappings m ~pool ctx q ms =
  let ms = Array.of_list ms in
  let header = Reformulate.output_header q in
  let parts, evaluate =
    Urm_util.Timer.time (fun () ->
        fan pool ~n:(Array.length ms) ~item:(fun i ->
            let ctrs = Urm_relalg.Eval.fresh_counters ~metrics:m () in
            let acc = Answer.create header in
            Basic.accumulate ~ctrs ctx q acc [ ms.(i) ];
            ( acc,
              ctrs.Urm_relalg.Eval.operators,
              ctrs.Urm_relalg.Eval.rows_produced )))
  in
  let (answer, ops, rows), aggregate =
    Urm_util.Timer.time (fun () -> merge_parts header parts)
  in
  (answer, ops, rows, evaluate, aggregate, Array.length ms)

let basic ?(metrics = Urm_obs.Metrics.global) ~pool ctx q ms =
  let m = Urm_obs.Metrics.scope metrics "basic" in
  let answer, ops, rows, evaluate, aggregate, groups =
    fan_mappings m ~pool ctx q ms
  in
  finish m ~engine:(Urm_relalg.Compile.engine_name (Ctx.engine ctx)) ~answer ~rewrite:0. ~plan:0. ~evaluate ~aggregate ~ops ~rows ~groups

let qsharing ?(metrics = Urm_obs.Metrics.global) ~pool ctx q ms =
  let m = Urm_obs.Metrics.scope metrics "q-sharing" in
  let reps, rewrite =
    Urm_util.Timer.time (fun () -> Qsharing.representatives ctx q ms)
  in
  let answer, ops, rows, evaluate, aggregate, groups =
    fan_mappings m ~pool ctx q reps
  in
  finish m ~engine:(Urm_relalg.Compile.engine_name (Ctx.engine ctx)) ~answer ~rewrite ~plan:0. ~evaluate ~aggregate ~ops ~rows ~groups

let ebasic ?(metrics = Urm_obs.Metrics.global) ~pool ctx q ms =
  let m = Urm_obs.Metrics.scope metrics "e-basic" in
  let units, rewrite =
    Urm_util.Timer.time (fun () -> Ebasic.distinct_source_queries ctx q ms)
  in
  let units = Array.of_list units in
  let header = Reformulate.output_header q in
  let parts, evaluate =
    Urm_util.Timer.time (fun () ->
        fan pool ~n:(Array.length units) ~item:(fun i ->
            let ctrs = Urm_relalg.Eval.fresh_counters ~metrics:m () in
            let acc = Answer.create header in
            Ebasic.accumulate_units ~ctrs ctx acc [ units.(i) ];
            ( acc,
              ctrs.Urm_relalg.Eval.operators,
              ctrs.Urm_relalg.Eval.rows_produced )))
  in
  let (answer, ops, rows), aggregate =
    Urm_util.Timer.time (fun () -> merge_parts header parts)
  in
  finish m ~engine:(Urm_relalg.Compile.engine_name (Ctx.engine ctx)) ~answer ~rewrite ~plan:0. ~evaluate ~aggregate ~ops ~rows
    ~groups:(Array.length units)

let emqo ?(metrics = Urm_obs.Metrics.global) ~pool ctx q ms =
  let m = Urm_obs.Metrics.scope metrics "e-MQO" in
  let units, rewrite =
    Urm_util.Timer.time (fun () -> Ebasic.distinct_source_queries ctx q ms)
  in
  let chunks = Chunk.split ~chunks:(Pool.jobs pool) units in
  let header = Reformulate.output_header q in
  let parts, evaluate =
    Urm_util.Timer.time (fun () ->
        fan pool ~n:(Array.length chunks) ~item:(fun c ->
            let ctrs = Urm_relalg.Eval.fresh_counters ~metrics:m () in
            let unit_parts, plan_time, _ =
              Emqo.eval_units ~ctrs ctx q chunks.(c)
            in
            ( unit_parts,
              plan_time,
              ctrs.Urm_relalg.Eval.operators,
              ctrs.Urm_relalg.Eval.rows_produced )))
  in
  let answer = Answer.create header in
  let plan = ref 0. and ops = ref 0 and rows = ref 0 in
  let (), aggregate =
    Urm_util.Timer.time (fun () ->
        List.iter
          (fun (unit_parts, plan_time, o, r) ->
            Array.iter (Answer.merge_into answer) unit_parts;
            plan := !plan +. plan_time;
            ops := !ops + o;
            rows := !rows + r)
          parts)
  in
  finish m ~engine:(Urm_relalg.Compile.engine_name (Ctx.engine ctx)) ~answer ~rewrite ~plan:!plan ~evaluate ~aggregate ~ops:!ops
    ~rows:!rows ~groups:(List.length units)

let osharing ?(strategy = Eunit.Sef) ?seed ?use_memo
    ?(metrics = Urm_obs.Metrics.global) ~pool ctx q ms =
  let m = Urm_obs.Metrics.scope metrics "o-sharing" in
  let reps, rewrite =
    Urm_util.Timer.time (fun () -> Qsharing.representatives ctx q ms)
  in
  Urm_obs.Metrics.incr ~by:(List.length reps)
    (Urm_obs.Metrics.counter (Urm_obs.Metrics.scope m "eunit") "representatives");
  let header = Reformulate.output_header q in
  let answer = Answer.create header in
  let root_env = Eunit.make_env ?seed ?use_memo ~metrics:m ~strategy ctx q in
  let root = Eunit.init q reps in
  let work, branch_time =
    Urm_util.Timer.time (fun () ->
        let op, groups = Eunit.branches root_env root in
        Array.of_list (List.map (fun (_, group) -> (op, group)) groups))
  in
  (* Each root partition runs in its own environment (fresh memo and, for
     [Random], a fresh generator) and reports its leaves in emission
     order; the caller replays them partition by partition in the
     sequential visit order. *)
  let parts, par_time =
    Urm_util.Timer.time (fun () ->
        fan pool ~n:(Array.length work) ~item:(fun g ->
            let env =
              Eunit.make_env ?seed ?use_memo ~metrics:m ~strategy ctx q
            in
            let op, group = work.(g) in
            let leaves = ref [] in
            let emit l =
              leaves := l :: !leaves;
              true
            in
            (match Eunit.exec_op env root op group with
            | Eunit.Leaf l -> ignore (emit l)
            | Eunit.Child c -> ignore (Eunit.run_qt env c ~emit));
            let ctrs = Eunit.counters env in
            ( List.rev !leaves,
              ctrs.Urm_relalg.Eval.operators,
              ctrs.Urm_relalg.Eval.rows_produced )))
  in
  let ops = ref 0 and rows = ref 0 in
  let (), aggregate =
    Urm_util.Timer.time (fun () ->
        List.iter
          (fun (leaves, o, r) ->
            List.iter
              (function
                | Eunit.Tuples (tuples, mass) ->
                  List.iter (fun t -> Answer.add answer t mass) tuples
                | Eunit.Null_answer mass -> Answer.add_null answer mass)
              leaves;
            ops := !ops + o;
            rows := !rows + r)
          parts)
  in
  let root_ctrs = Eunit.counters root_env in
  finish m ~engine:(Urm_relalg.Compile.engine_name (Ctx.engine ctx)) ~answer ~rewrite ~plan:0. ~evaluate:(branch_time +. par_time)
    ~aggregate
    ~ops:(!ops + root_ctrs.Urm_relalg.Eval.operators)
    ~rows:(!rows + root_ctrs.Urm_relalg.Eval.rows_produced)
    ~groups:(List.length reps)

let run ?(metrics = Urm_obs.Metrics.global) ~pool alg ctx q ms =
  if Pool.jobs pool = 1 then Algorithms.run ~metrics alg ctx q ms
  else
    match alg with
    | Algorithms.Basic -> basic ~metrics ~pool ctx q ms
    | Algorithms.Ebasic -> ebasic ~metrics ~pool ctx q ms
    | Algorithms.Emqo -> emqo ~metrics ~pool ctx q ms
    | Algorithms.Qsharing -> qsharing ~metrics ~pool ctx q ms
    | Algorithms.Osharing s -> osharing ~strategy:s ~metrics ~pool ctx q ms
    | Algorithms.Topk _ -> Algorithms.run ~metrics alg ctx q ms
