(* urm — command-line interface to the uncertain-matching query engine.

   Subcommands:
     generate    print statistics of a synthetic source instance
     match       show matcher correspondence candidates for a target schema
     mappings    generate the h best possible mappings and overlap statistics
     query       evaluate one of the Table III queries with a chosen algorithm
     topk        evaluate a probabilistic top-k query
     experiment  run one (or all) of the paper's experiments *)

(* Must run before anything else: a process spawned by the shard router
   re-executes this binary with URM_SHARD_WORKER set and must become a
   worker instead of parsing arguments. *)
let () = Urm_shard.Launcher.exec_if_worker ()

open Cmdliner

let scale_t =
  let doc = "Scale of the synthetic source instance (1.0 ≈ 86k tuples)." in
  Arg.(value & opt float Urm_tpch.Gen.default_scale & info [ "scale" ] ~doc)

let seed_t =
  let doc = "Random seed for data generation." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let h_t =
  let doc = "Number of possible mappings (the paper's h)." in
  Arg.(value & opt int 100 & info [ "num-mappings"; "m" ] ~doc)

let target_t =
  let doc = "Target schema: Excel, Noris or Paragon." in
  Arg.(value & opt string "Excel" & info [ "target" ] ~doc)

let lookup_target name =
  try Ok (Urm_workload.Targets.by_name name)
  with Not_found ->
    Error (`Msg (Printf.sprintf "unknown target schema %S (Excel|Noris|Paragon)" name))

let metrics_t =
  let doc =
    "After evaluating, print the operator-level metrics registry (counters \
     and phase timers) as JSON on stdout."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let print_metrics enabled =
  if enabled then
    print_endline
      (Urm_util.Json.to_string (Urm_obs.Metrics.to_json Urm_obs.Metrics.global))

(* ------------------------------------------------------------------ *)

let generate_cmd =
  let run scale seed =
    let cat = Urm_tpch.Gen.generate ~seed ~scale () in
    Format.printf "source instance at scale %g (seed %d):@." scale seed;
    List.iter
      (fun name ->
        Format.printf "  %-10s %8d rows@." name
          (Urm_relalg.Relation.cardinality (Urm_relalg.Catalog.find cat name)))
      (Urm_relalg.Catalog.names cat);
    Format.printf "  %-10s %8d rows total@." "" (Urm_relalg.Catalog.total_rows cat)
  in
  let doc = "Generate a synthetic TPC-H-style source instance and print statistics." in
  Cmd.v (Cmd.info "generate" ~doc) Term.(const run $ scale_t $ seed_t)

let match_cmd =
  let run target_name limit =
    match lookup_target target_name with
    | Error (`Msg m) ->
      prerr_endline m;
      exit 1
    | Ok target ->
      let cands =
        Urm_matcher.Match.candidates ~source:Urm_tpch.Gen.schema ~target ()
      in
      Format.printf "%d candidates for %s ↔ TPCH (best first):@."
        (List.length cands) target_name;
      List.iteri
        (fun i c ->
          if i < limit then Format.printf "  %a@." Urm_matcher.Match.pp_candidate c)
        cands
  in
  let limit_t =
    Arg.(value & opt int 30 & info [ "limit" ] ~doc:"Candidates to print.")
  in
  let doc = "Score correspondence candidates between a target schema and the source." in
  Cmd.v (Cmd.info "match" ~doc) Term.(const run $ target_t $ limit_t)

let mappings_cmd =
  let run target_name h show =
    match lookup_target target_name with
    | Error (`Msg m) ->
      prerr_endline m;
      exit 1
    | Ok target ->
      let ms = Urm.Mapgen.generate ~h ~source:Urm_tpch.Gen.schema ~target () in
      Format.printf "%d possible mappings for %s; o-ratio %.3f@." (List.length ms)
        target_name
        (Urm.Overlap.o_ratio ms);
      List.iteri (fun i m -> if i < show then Format.printf "%a@." Urm.Mapping.pp m) ms;
      Format.printf "@.most shared correspondences:@.";
      List.iteri
        (fun i ((t, s), f) ->
          if i < 10 then Format.printf "  %-28s ← %-24s %.0f%%@." t s (100. *. f))
        (Urm.Overlap.correspondence_frequencies ms)
  in
  let show_t = Arg.(value & opt int 3 & info [ "show" ] ~doc:"Mappings to print.") in
  let doc = "Generate the h best possible mappings via Murty's algorithm." in
  Cmd.v (Cmd.info "mappings" ~doc) Term.(const run $ target_t $ h_t $ show_t)

let algorithm_t =
  let doc = "Algorithm: basic, e-basic, e-mqo, q-sharing, o-sharing, o-sharing-random, o-sharing-snf." in
  Arg.(value & opt string "o-sharing" & info [ "algorithm"; "a" ] ~doc)

let parse_algorithm = function
  | "basic" -> Ok Urm.Algorithms.Basic
  | "e-basic" -> Ok Urm.Algorithms.Ebasic
  | "e-mqo" -> Ok Urm.Algorithms.Emqo
  | "q-sharing" -> Ok Urm.Algorithms.Qsharing
  | "o-sharing" -> Ok (Urm.Algorithms.Osharing Urm.Eunit.Sef)
  | "o-sharing-snf" -> Ok (Urm.Algorithms.Osharing Urm.Eunit.Snf)
  | "o-sharing-random" -> Ok (Urm.Algorithms.Osharing Urm.Eunit.Random)
  | other -> Error (`Msg ("unknown algorithm " ^ other))

let query_name_t =
  let doc = "Query name (Q1..Q10)." in
  Arg.(value & pos 0 string "Q1" & info [] ~docv:"QUERY" ~doc)

let jobs_t =
  let doc =
    "Evaluation domains (1 = sequential).  Parallel runs fan the per-mapping \
     / per-e-unit evaluations over a domain pool and merge deterministically: \
     answers are bit-identical to --jobs 1."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~doc)

let engine_conv =
  Arg.conv
    ( (fun s ->
        match Urm_relalg.Compile.engine_of_string s with
        | Ok e -> Ok e
        | Error msg -> Error (`Msg msg)),
      fun ppf e -> Format.pp_print_string ppf (Urm_relalg.Compile.engine_name e)
    )

let engine_t =
  let doc =
    "Query-execution engine: 'vectorized' (columnar batched execution over \
     the compiled plans; the default), 'compiled' (the same cost-based \
     physical plans, one boxed row at a time) or 'interpreted' (the \
     tree-walking evaluator).  All three return identical answers."
  in
  Arg.(
    value & opt engine_conv Urm_relalg.Compile.Vectorized & info [ "engine" ] ~doc)

(* Evaluate [alg] under a throwaway [jobs]-domain pool (sequentially when
   [jobs <= 1]; the pool dispatcher routes jobs = 1 back to the untouched
   sequential paths). *)
let run_with_jobs ~jobs alg ctx q ms =
  if jobs <= 1 then Urm.Algorithms.run alg ctx q ms
  else
    let pool = Urm_par.Pool.create ~jobs () in
    Fun.protect
      ~finally:(fun () -> Urm_par.Pool.shutdown pool)
      (fun () -> Urm_par.Drivers.run ~pool alg ctx q ms)

let answers_t =
  Arg.(value & opt int 10 & info [ "answers" ] ~doc:"Answer tuples to print.")

let sql_t =
  let doc =
    "Evaluate this SQL text instead of a named query (the positional QUERY \
     argument then selects only the target schema via Q1..Q10, or use \
     --target)."
  in
  Arg.(value & opt (some string) None & info [ "sql" ] ~doc)

let explain_t =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:"Print the u-trace (operator choices, partitions, leaves) while evaluating.")

let query_cmd =
  let run qname alg_name scale seed h answers sql explain jobs engine metrics =
    match parse_algorithm alg_name with
    | Error (`Msg m) ->
      prerr_endline m;
      exit 1
    | Ok alg -> begin
      match
        match sql with
        | None -> Urm_workload.Queries.by_name qname
        | Some text ->
          let target =
            match Urm_workload.Queries.by_name qname with
            | target, _ -> target
            | exception Not_found -> Urm_workload.Targets.by_name qname
          in
          (target, Urm.Sql.parse_exn ~name:"sql" ~target text)
      with
      | exception Not_found ->
        Format.eprintf "unknown query %s (Q1..Q10)@." qname;
        exit 1
      | exception Invalid_argument msg ->
        Format.eprintf "%s@." msg;
        exit 1
      | target, q ->
        let p = Urm_workload.Pipeline.create ~seed ~scale () in
        let ctx = Urm_workload.Pipeline.ctx ~engine p target in
        let ms = Urm_workload.Pipeline.mappings p target ~h in
        Format.printf "query: %a@." Urm.Query.pp q;
        let report =
          match (explain, alg) with
          | true, Urm.Algorithms.Osharing strategy ->
            let tracer line = Format.printf "  │ %s@." line in
            fst (Urm.Osharing.run_with_stats ~strategy ~tracer ctx q ms)
          | true, _ ->
            Format.eprintf "--explain requires an o-sharing algorithm@.";
            exit 1
          | false, _ -> run_with_jobs ~jobs alg ctx q ms
        in
        Format.printf "%s: %a@." (Urm.Algorithms.name alg) Urm.Report.pp report;
        (* The report records the engine that actually ran (an algorithm may
           route to the interpreted oracle or a "+factorized" variant); warn
           when it differs from the engine the user asked for. *)
        (match report.Urm.Report.engine with
        | "" -> ()
        | effective ->
          let base =
            match String.index_opt effective '+' with
            | Some i -> String.sub effective 0 i
            | None -> effective
          in
          Format.printf "engine: %s@." effective;
          let requested = Urm_relalg.Compile.engine_name engine in
          if base <> requested then
            Format.eprintf
              "warning: requested engine '%s' but %s executed with '%s'@."
              requested (Urm.Algorithms.name alg) effective);
        Format.printf "answers (top %d of %d):@." answers
          (Urm.Answer.size report.Urm.Report.answer);
        List.iter
          (fun (t, prob) ->
            Format.printf "  (%s) : %.4f@."
              (String.concat ", "
                 (Array.to_list (Array.map Urm_relalg.Value.to_string t)))
              prob)
          (Urm.Answer.top_k report.Urm.Report.answer answers);
        if Urm.Answer.null_prob report.Urm.Report.answer > 0. then
          Format.printf "  θ (empty) : %.4f@."
            (Urm.Answer.null_prob report.Urm.Report.answer);
        print_metrics metrics
    end
  in
  let doc = "Evaluate a probabilistic query over the uncertain matching." in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const run $ query_name_t $ algorithm_t $ scale_t $ seed_t $ h_t $ answers_t
      $ sql_t $ explain_t $ jobs_t $ engine_t $ metrics_t)

let topk_cmd =
  let run qname k scale seed h metrics =
    match Urm_workload.Queries.by_name qname with
    | exception Not_found ->
      Format.eprintf "unknown query %s (Q1..Q10)@." qname;
      exit 1
    | target, q ->
      let p = Urm_workload.Pipeline.create ~seed ~scale () in
      let ctx = Urm_workload.Pipeline.ctx p target in
      let ms = Urm_workload.Pipeline.mappings p target ~h in
      let r = Urm.Topk.run ~k ctx q ms in
      Format.printf "top-%d of %a (stopped early: %b, %d e-units):@." k
        Urm.Query.pp q r.Urm.Topk.stopped_early r.Urm.Topk.visited_eunits;
      List.iter
        (fun (t, lb) ->
          Format.printf "  (%s) : ≥ %.4f@."
            (String.concat ", "
               (Array.to_list (Array.map Urm_relalg.Value.to_string t)))
            lb)
        (Urm.Answer.to_list r.Urm.Topk.report.Urm.Report.answer);
      print_metrics metrics
  in
  let k_t = Arg.(value & opt int 5 & info [ "k" ] ~doc:"How many answers.") in
  let doc = "Evaluate a probabilistic top-k query." in
  Cmd.v (Cmd.info "topk" ~doc)
    Term.(const run $ query_name_t $ k_t $ scale_t $ seed_t $ h_t $ metrics_t)

let threshold_cmd =
  let run qname tau scale seed h metrics =
    match Urm_workload.Queries.by_name qname with
    | exception Not_found ->
      Format.eprintf "unknown query %s (Q1..Q10)@." qname;
      exit 1
    | target, q ->
      let p = Urm_workload.Pipeline.create ~seed ~scale () in
      let ctx = Urm_workload.Pipeline.ctx p target in
      let ms = Urm_workload.Pipeline.mappings p target ~h in
      let r = Urm.Threshold.run ~tau ctx q ms in
      Format.printf "answers of %a with probability ≥ %.2f (stopped early: %b):@."
        Urm.Query.pp q tau r.Urm.Threshold.stopped_early;
      List.iter
        (fun (t, lb) ->
          Format.printf "  (%s) : ≥ %.4f@."
            (String.concat ", "
               (Array.to_list (Array.map Urm_relalg.Value.to_string t)))
            lb)
        (Urm.Answer.to_list r.Urm.Threshold.report.Urm.Report.answer);
      print_metrics metrics
  in
  let tau_t = Arg.(value & opt float 0.5 & info [ "tau" ] ~doc:"Probability threshold.") in
  let doc = "Evaluate a probability-threshold query." in
  Cmd.v (Cmd.info "threshold" ~doc)
    Term.(const run $ query_name_t $ tau_t $ scale_t $ seed_t $ h_t $ metrics_t)

let approx_cmd =
  let run qname samples delta epsilon deadline k tau synthetic scale seed h
      engine metrics =
    match Urm_workload.Queries.by_name qname with
    | exception Not_found ->
      Format.eprintf "unknown query %s (Q1..Q10)@." qname;
      exit 1
    | target, q -> (
      let module Json = Urm_util.Json in
      let module B = Urm_anytime.Budget in
      let p = Urm_workload.Pipeline.create ~seed ~scale () in
      let ctx = Urm_workload.Pipeline.ctx ~engine p target in
      let ms =
        if synthetic then Urm_workload.Pipeline.synthetic_mappings p target ~h
        else Urm_workload.Pipeline.mappings p target ~h
      in
      let budget =
        {
          B.default with
          B.max_samples = (if samples <= 0 then None else Some samples);
          deadline;
          delta;
          epsilon;
        }
      in
      let base report n shapes stop extra =
        Json.Obj
          ([
             ("query", Json.Str qname);
             ("mappings", Json.Num (float_of_int (List.length ms)));
             ("delta", Json.Num delta);
             ("samples", Json.Num (float_of_int n));
             ("shapes", Json.Num (float_of_int shapes));
             ("stop_reason", Json.Str (B.stop_reason_name stop));
           ]
          @ extra
          @ [ ("report", Urm.Report.to_json report) ])
      in
      match (k, tau) with
      | Some _, Some _ ->
        prerr_endline "give --k or --tau, not both";
        exit 1
      | Some k, None ->
        let r = Urm_anytime.Topk.run ~seed ~budget ~k ctx q ms in
        print_endline
          (Json.to_string
             (base r.Urm_anytime.Topk.report r.Urm_anytime.Topk.samples
                r.Urm_anytime.Topk.shapes r.Urm_anytime.Topk.stop_reason
                [
                  ("k", Json.Num (float_of_int k));
                  ("stopped_early", Json.Bool r.Urm_anytime.Topk.stopped_early);
                ]));
        print_metrics metrics
      | None, Some tau ->
        let r = Urm_anytime.Threshold.run ~seed ~budget ~tau ctx q ms in
        print_endline
          (Json.to_string
             (base r.Urm_anytime.Threshold.report
                r.Urm_anytime.Threshold.samples r.Urm_anytime.Threshold.shapes
                r.Urm_anytime.Threshold.stop_reason
                [
                  ("tau", Json.Num tau);
                  ( "stopped_early",
                    Json.Bool r.Urm_anytime.Threshold.stopped_early );
                  ( "undecided",
                    Json.Num (float_of_int r.Urm_anytime.Threshold.undecided) );
                ]));
        print_metrics metrics
      | None, None ->
        let r = Urm_anytime.Estimator.run ~seed ~budget ctx q ms in
        let lo, hi = r.Urm_anytime.Estimator.null_interval in
        print_endline
          (Json.to_string
             (base r.Urm_anytime.Estimator.report
                r.Urm_anytime.Estimator.samples r.Urm_anytime.Estimator.shapes
                r.Urm_anytime.Estimator.stop_reason
                [
                  ( "null_interval",
                    Json.Obj [ ("lo", Json.Num lo); ("hi", Json.Num hi) ] );
                  ("unseen_hi", Json.Num r.Urm_anytime.Estimator.unseen_hi);
                ]));
        print_metrics metrics)
  in
  let samples_t =
    Arg.(
      value & opt int 100_000
      & info [ "samples" ]
          ~doc:"Sample budget (draws); 0 removes the cap (δ/ε or --deadline stop the run).")
  in
  let delta_t =
    Arg.(
      value & opt float 0.05
      & info [ "delta" ] ~doc:"Confidence parameter: intervals hold with confidence 1−δ.")
  in
  let epsilon_t =
    Arg.(
      value & opt float 0.02
      & info [ "epsilon" ]
          ~doc:"Target interval half-width for the plain estimate (ignored with --k/--tau).")
  in
  let deadline_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~doc:"Wall-clock budget in seconds.")
  in
  let k_opt_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "k" ] ~doc:"Anytime top-k: stop when the top-k set is stable.")
  in
  let tau_opt_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "tau" ]
          ~doc:"Anytime threshold: stop when every tuple is decided against τ.")
  in
  let synthetic_t =
    Arg.(
      value & flag
      & info [ "synthetic" ]
          ~doc:
            "Draw the mapping set with the synthetic generator (scales to h = \
             10⁴..10⁶) instead of Murty's exact enumeration.")
  in
  let doc =
    "Anytime approximate evaluation: Monte-Carlo sampling over the mapping \
     distribution with Wilson confidence intervals, under a samples / \
     wall-clock / (δ, ε) budget.  Prints a JSON result with per-tuple \
     interval bounds and the stop reason."
  in
  Cmd.v (Cmd.info "approx" ~doc)
    Term.(
      const run $ query_name_t $ samples_t $ delta_t $ epsilon_t $ deadline_t
      $ k_opt_t $ tau_opt_t $ synthetic_t $ scale_t $ seed_t $ h_t $ engine_t
      $ metrics_t)

let export_cmd =
  let run dir scale seed =
    let cat = Urm_tpch.Gen.generate ~seed ~scale () in
    Urm_relalg.Csv.export_catalog dir cat;
    Format.printf "wrote %d relations (%d rows) to %s/@."
      (List.length (Urm_relalg.Catalog.names cat))
      (Urm_relalg.Catalog.total_rows cat)
      dir
  in
  let dir_t = Arg.(value & pos 0 string "urm-data" & info [] ~docv:"DIR") in
  let doc = "Export a generated source instance as CSV files." in
  Cmd.v (Cmd.info "export" ~doc) Term.(const run $ dir_t $ scale_t $ seed_t)

let save_mappings_cmd =
  let run path target_name h =
    match lookup_target target_name with
    | Error (`Msg m) ->
      prerr_endline m;
      exit 1
    | Ok target ->
      let ms = Urm.Mapgen.generate ~h ~source:Urm_tpch.Gen.schema ~target () in
      Urm.Mapping_io.save path ms;
      Format.printf "saved %d mappings to %s@." (List.length ms) path
  in
  let path_t = Arg.(value & pos 0 string "mappings.json" & info [] ~docv:"FILE") in
  let doc = "Generate mappings and save them as JSON." in
  Cmd.v (Cmd.info "save-mappings" ~doc) Term.(const run $ path_t $ target_t $ h_t)

let plan_cmd =
  let run qname scale seed h =
    match Urm_workload.Queries.by_name qname with
    | exception Not_found ->
      Format.eprintf "unknown query %s (Q1..Q10)@." qname;
      exit 1
    | target, q ->
      let p = Urm_workload.Pipeline.create ~seed ~scale () in
      let ctx = Urm_workload.Pipeline.ctx p target in
      let ms = Urm_workload.Pipeline.mappings p target ~h in
      let distinct = Urm.Ebasic.distinct_source_queries ctx q ms in
      Format.printf "%a reformulates into %d distinct source queries over %d mappings:@."
        Urm.Query.pp q (List.length distinct) (List.length ms);
      List.iter
        (fun (sq, prob) ->
          match sq.Urm.Reformulate.body with
          | Urm.Reformulate.Expr e ->
            Format.printf "@.  [p=%.3f] %s@." prob (Urm_relalg.Algebra.to_string e)
          | Urm.Reformulate.Unsatisfiable ->
            Format.printf "@.  [p=%.3f] unsatisfiable (θ)@." prob
          | Urm.Reformulate.Trivial -> Format.printf "@.  [p=%.3f] trivial@." prob)
        distinct
  in
  let doc = "Show the distinct reformulated source queries and their probability mass." in
  Cmd.v (Cmd.info "plan" ~doc) Term.(const run $ query_name_t $ scale_t $ seed_t $ h_t)

let experiment_cmd =
  let run id quick jobs engine =
    let cfg =
      if quick then Urm_workload.Experiments.quick
      else Urm_workload.Experiments.default
    in
    let cfg = { cfg with Urm_workload.Experiments.jobs; engine } in
    let ids =
      if String.equal id "all" then List.map fst Urm_workload.Experiments.all
      else [ id ]
    in
    List.iter
      (fun id ->
        match Urm_workload.Experiments.run_by_id cfg id with
        | table -> Format.printf "%a@." Urm_workload.Experiments.Table.pp table
        | exception Not_found ->
          Format.eprintf "unknown experiment %s; available: %s@." id
            (String.concat ", " (List.map fst Urm_workload.Experiments.all));
          exit 1)
      ids
  in
  let id_t =
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc:"Experiment id or 'all'.")
  in
  let quick_t =
    Arg.(value & flag & info [ "quick" ] ~doc:"Use the miniature configuration.")
  in
  let doc = "Re-run the paper's experiments (see DESIGN.md for the index)." in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(const run $ id_t $ quick_t $ jobs_t $ engine_t)

(* ------------------------------------------------------------------ *)
(* Query service *)

let port_t =
  let doc = "TCP port on the loopback interface (0 picks an ephemeral port)." in
  Arg.(value & opt int 7411 & info [ "port"; "p" ] ~doc)

let serve_cmd =
  let run_sharded port shards queue_depth cache_size preload seed scale h
      eval_jobs engine =
    let cfg =
      {
        Urm_shard.Router.default_config with
        port;
        shards;
        queue_depth;
        worker =
          {
            Urm_shard.Launcher.engine;
            eval_workers = max 1 eval_jobs;
            queue_depth;
            cache_capacity = cache_size;
          };
      }
    in
    match Urm_shard.Router.start cfg with
    | Error msg ->
      Format.eprintf "cannot start the shard router: %s@." msg;
      exit 1
    | Ok router ->
      (* Preload over the wire so every shard opens the session. *)
      let client =
        lazy
          (Urm_service.Client.connect ~framed:true
             ~port:(Urm_shard.Router.port router)
             ())
      in
      List.iter
        (fun target ->
          let module Json = Urm_util.Json in
          match
            Urm_service.Client.call (Lazy.force client) ~op:"open-session"
              [
                ("target", Json.Str target);
                ("session", Json.Str (String.lowercase_ascii target));
                ("seed", Json.Num (float_of_int seed));
                ("scale", Json.Num scale);
                ("h", Json.Num (float_of_int h));
              ]
          with
          | Ok _ -> Format.printf "session %s ready on every shard@." target
          | Error (code, msg) ->
            Format.eprintf "preload %s failed: %s: %s@." target code msg;
            exit 1)
        preload;
      if Lazy.is_val client then Urm_service.Client.close (Lazy.force client);
      Format.printf
        "urm shard router listening on 127.0.0.1:%d (%d workers: pids %s)@."
        (Urm_shard.Router.port router)
        shards
        (String.concat ", "
           (List.map string_of_int (Urm_shard.Router.worker_pids router)));
      Sys.set_signal Sys.sigint
        (Sys.Signal_handle (fun _ -> Urm_shard.Router.stop router));
      Urm_shard.Router.wait router;
      Format.printf "drained (%d worker restarts)@."
        (Urm_shard.Router.restarts router)
  in
  let run port shards workers queue_depth cache_size preload seed scale h
      eval_jobs engine metrics =
    if shards > 0 then
      run_sharded port shards queue_depth cache_size preload seed scale h
        eval_jobs engine
    else
    let cfg =
      {
        Urm_service.Server.default_config with
        port;
        queue_depth;
        cache_capacity = cache_size;
        eval_jobs;
        engine;
        workers =
          (match workers with
          | Some w -> w
          | None -> Urm_service.Server.default_config.Urm_service.Server.workers);
      }
    in
    let server = Urm_service.Server.start cfg in
    List.iter
      (fun target ->
        match
          Urm_service.Session.open_session
            (Urm_service.Server.sessions server)
            ~name:(String.lowercase_ascii target)
            ~engine ~seed ~scale ~h ~target ()
        with
        | Ok (s, _) ->
          Format.printf "session %s ready: %s over %s (%d rows, %d mappings)@."
            s.Urm_service.Session.name s.Urm_service.Session.fingerprint target
            s.Urm_service.Session.rows h
        | Error msg ->
          Format.eprintf "preload %s failed: %s@." target msg;
          exit 1)
      preload;
    Format.printf "urm service listening on 127.0.0.1:%d (%d workers, queue %d)@."
      (Urm_service.Server.port server)
      cfg.Urm_service.Server.workers cfg.Urm_service.Server.queue_depth;
    (* Ctrl-C begins the same graceful drain as a client shutdown request. *)
    Sys.set_signal Sys.sigint
      (Sys.Signal_handle (fun _ -> Urm_service.Server.stop server));
    Urm_service.Server.wait server;
    let count, p50, p95, p99 = Urm_service.Server.latency_summary server in
    Format.printf
      "drained after %d requests (window %d: p50 %.4fs, p95 %.4fs, p99 %.4fs)@."
      (Option.value ~default:0
         (Urm_obs.Metrics.find_counter
            (Urm_obs.Metrics.scope Urm_obs.Metrics.global "service")
            "requests"))
      count p50 p95 p99;
    print_metrics metrics
  in
  let shards_t =
    Arg.(
      value & opt int 0
      & info [ "shards" ]
          ~doc:
            "Run as a shard router over this many spawned worker processes \
             (0 = single-process service).  Session state is replicated to \
             every worker; basic-algorithm queries fan out over mapping \
             ranges and merge bit-identically.")
  in
  let workers_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~doc:"Executor domains (default: per machine).")
  in
  let queue_t =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ]
          ~doc:"Admission-queue bound; requests beyond it are rejected busy.")
  in
  let cache_t =
    Arg.(value & opt int 256 & info [ "cache-size" ] ~doc:"Answer-cache entries.")
  in
  let preload_t =
    Arg.(
      value & opt_all string []
      & info [ "preload" ]
          ~doc:
            "Open a session for this target schema at boot (repeatable); named \
             after the lowercased target.")
  in
  let eval_jobs_t =
    Arg.(
      value & opt int 1
      & info [ "eval-jobs" ]
          ~doc:
            "Evaluation domains per query request (one pool shared across \
             workers); 1 = sequential evaluation.")
  in
  let doc = "Run the query service: sessions, answer cache, executor pool." in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ port_t $ shards_t $ workers_t $ queue_t $ cache_t $ preload_t
      $ seed_t $ scale_t $ h_t $ eval_jobs_t $ engine_t $ metrics_t)

let shard_worker_cmd =
  let run port engine = Urm_shard.Worker.run ~port ~engine () in
  let doc =
    "Run one shard worker by hand (the router normally spawns these \
     itself): an ordinary query service that announces its port as \
     'URM_SHARD_PORT <n>' on stdout."
  in
  Cmd.v (Cmd.info "shard-worker" ~doc) Term.(const run $ port_t $ engine_t)

let request_cmd =
  let run port framed op arg session target seed scale h alg answers k tau delta
      samples sql =
    let module Json = Urm_util.Json in
    let opt name v f = Option.map (fun v -> (name, f v)) v in
    let params =
      match op with
      | "ping" | "metrics" | "sessions" | "shutdown" -> Ok []
      | "open-session" ->
        (* The positional argument is the target schema here (it would be
           silently dead otherwise); [--target] remains for symmetry with
           the other subcommands. *)
        let target = Option.value ~default:target arg in
        Ok
          (List.filter_map Fun.id
             [
               Some ("target", Json.Str target);
               opt "session" session (fun s -> Json.Str s);
               Some ("seed", Json.Num (float_of_int seed));
               Some ("scale", Json.Num scale);
               Some ("h", Json.Num (float_of_int h));
             ])
      | "close-session" -> (
        match session with
        | Some s -> Ok [ ("session", Json.Str s) ]
        | None -> Error "close-session needs --session")
      | "query" | "topk" | "threshold" | "approx" -> (
        match (session, arg, sql) with
        | None, _, _ -> Error (op ^ " needs --session")
        | _, Some _, Some _ -> Error "give either a query name or --sql, not both"
        | Some s, _, _ ->
          Ok
            (List.filter_map Fun.id
               [
                 Some ("session", Json.Str s);
                 (match (arg, sql) with
                 | Some q, _ -> Some ("query", Json.Str q)
                 | None, Some text -> Some ("sql", Json.Str text)
                 | None, None -> Some ("query", Json.Str "Q4"));
                 (if String.equal op "query" then Some ("algorithm", Json.Str alg)
                  else None);
                 (if String.equal op "query" || String.equal op "approx" then
                    Some ("answers", Json.Num (float_of_int answers))
                  else None);
                 (if String.equal op "topk" then
                    Some ("k", Json.Num (float_of_int (Option.value ~default:5 k)))
                  else if String.equal op "approx" then
                    opt "k" k (fun k -> Json.Num (float_of_int k))
                  else None);
                 (if String.equal op "threshold" then
                    Some ("tau", Json.Num (Option.value ~default:0.5 tau))
                  else if String.equal op "approx" then
                    opt "tau" tau (fun t -> Json.Num t)
                  else None);
                 (if String.equal op "approx" then
                    opt "delta" delta (fun d -> Json.Num d)
                  else None);
                 (if String.equal op "approx" then
                    opt "samples" samples (fun n -> Json.Num (float_of_int n))
                  else None);
                 (if String.equal op "approx" then
                    Some ("seed", Json.Num (float_of_int seed))
                  else None);
               ]))
      | "raw" -> (
        match arg with
        | Some text -> (
          match Json.parse text with
          | Ok _ -> Ok [ ("__raw", Json.Str text) ]
          | Error msg -> Error ("raw request is not JSON: " ^ msg))
        | None -> Error "raw needs the request JSON as an argument")
      | other -> Error ("unknown op " ^ other)
    in
    match params with
    | Error msg ->
      prerr_endline msg;
      exit 1
    | Ok params -> (
      match Urm_service.Client.connect ~framed ~port () with
      | exception Unix.Unix_error (e, _, _) ->
        Format.eprintf "cannot connect to 127.0.0.1:%d: %s@." port
          (Unix.error_message e);
        exit 1
      | client ->
        let result =
          match List.assoc_opt "__raw" params with
          | Some (Json.Str raw) -> (
            match Urm_service.Client.roundtrip client raw with
            | Ok reply -> Ok (Json.parse_exn reply)
            | Error msg -> Error ("transport", msg))
          | _ -> Urm_service.Client.call client ~op params
        in
        Urm_service.Client.close client;
        (match result with
        | Ok json -> print_endline (Json.to_string json)
        | Error (code, msg) ->
          Format.eprintf "%s: %s@." code msg;
          exit 1))
  in
  let op_t =
    let doc =
      "Operation: ping, open-session, close-session, sessions, query, topk, \
       threshold, approx, metrics, shutdown, or raw."
    in
    Arg.(value & pos 0 string "ping" & info [] ~docv:"OP" ~doc)
  in
  let arg_t =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"ARG"
          ~doc:
            "Query name (query/topk/threshold), target schema (open-session), \
             or raw JSON.")
  in
  let session_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "session" ] ~doc:"Session name the request addresses.")
  in
  let answers_t =
    Arg.(value & opt int 20 & info [ "answers" ] ~doc:"Answer tuples to return.")
  in
  let k_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "k" ] ~doc:"Top-k size (default 5; anytime top-k for approx).")
  in
  let tau_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "tau" ]
          ~doc:"Probability threshold (default 0.5; anytime threshold for approx).")
  in
  let delta_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "delta" ] ~doc:"Confidence parameter for approx (default 0.05).")
  in
  let samples_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "samples" ] ~doc:"Sample budget for approx (default 100000).")
  in
  let framed_t =
    Arg.(
      value & flag
      & info [ "framed" ]
          ~doc:
            "Speak the binary frame protocol instead of ND-JSON lines (the \
             server auto-detects by the first byte).")
  in
  let doc = "Send one request to a running urm service and print the reply." in
  Cmd.v (Cmd.info "request" ~doc)
    Term.(
      const run $ port_t $ framed_t $ op_t $ arg_t $ session_t $ target_t
      $ seed_t $ scale_t $ h_t $ algorithm_t $ answers_t $ k_t $ tau_t $ delta_t
      $ samples_t $ sql_t)

let mutate_cmd =
  let module Json = Urm_util.Json in
  (* One comma-separated row literal: each token tries int, then float,
     then (bare "null") NULL, and falls back to a string. *)
  let parse_row spec =
    match String.index_opt spec ':' with
    | None -> Error (Printf.sprintf "%S: expected REL:v1,v2,..." spec)
    | Some i ->
      let rel = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      let value tok =
        let tok = String.trim tok in
        match int_of_string_opt tok with
        | Some n -> Json.Num (float_of_int n)
        | None -> (
          match float_of_string_opt tok with
          | Some f -> Json.Num f
          | None -> if String.equal tok "null" then Json.Null else Json.Str tok)
      in
      Ok (rel, List.map value (String.split_on_char ',' rest))
  in
  let parse_reweight spec =
    match String.index_opt spec ':' with
    | None -> Error (Printf.sprintf "%S: expected ID:PROB" spec)
    | Some i -> (
      let id = String.sub spec 0 i in
      let prob = String.sub spec (i + 1) (String.length spec - i - 1) in
      match (int_of_string_opt id, float_of_string_opt prob) with
      | Some id, Some prob -> Ok (id, prob)
      | _ -> Error (Printf.sprintf "%S: expected ID:PROB" spec))
  in
  (* PROB:T.a=S.b,T.c=S.d — the new mapping's probability and its
     target-to-source correspondence pairs. *)
  let parse_add spec =
    match String.index_opt spec ':' with
    | None -> Error (Printf.sprintf "%S: expected PROB:T.a=S.b,..." spec)
    | Some i -> (
      match float_of_string_opt (String.sub spec 0 i) with
      | None -> Error (Printf.sprintf "%S: expected PROB:T.a=S.b,..." spec)
      | Some prob -> (
        let pairs =
          String.split_on_char ',' (String.sub spec (i + 1) (String.length spec - i - 1))
          |> List.map (fun p ->
                 match String.index_opt p '=' with
                 | None -> Error (Printf.sprintf "%S: expected T.attr=S.attr" p)
                 | Some j ->
                   Ok
                     ( String.trim (String.sub p 0 j),
                       String.trim (String.sub p (j + 1) (String.length p - j - 1))
                     ))
        in
        match List.find_opt Result.is_error pairs with
        | Some (Error msg) -> Error msg
        | _ -> Ok (prob, List.map Result.get_ok pairs)))
  in
  let run port session inserts deletes reweights prunes adds =
    let ( let* ) = Result.bind in
    let collect f specs k =
      List.fold_left
        (fun acc spec ->
          let* acc = acc in
          let* v = f spec in
          Ok (k v :: acc))
        (Ok []) specs
      |> Result.map List.rev
    in
    let row_mutation op (rel, row) =
      Json.Obj [ ("op", Json.Str op); ("rel", Json.Str rel); ("row", Json.Arr row) ]
    in
    let mutations =
      let* inserts = collect parse_row inserts (row_mutation "insert") in
      let* deletes = collect parse_row deletes (row_mutation "delete") in
      let* reweights =
        collect parse_reweight reweights (fun (id, prob) ->
            Json.Obj
              [
                ("op", Json.Str "reweight");
                ("mapping", Json.Num (float_of_int id));
                ("prob", Json.Num prob);
              ])
      in
      let prunes =
        List.map
          (fun id ->
            Json.Obj
              [ ("op", Json.Str "prune"); ("mapping", Json.Num (float_of_int id)) ])
          prunes
      in
      let* adds =
        collect parse_add adds (fun (prob, pairs) ->
            Json.Obj
              [
                ("op", Json.Str "add-mapping");
                ( "pairs",
                  Json.Arr
                    (List.map
                       (fun (t, s) -> Json.Arr [ Json.Str t; Json.Str s ])
                       pairs) );
                ("prob", Json.Num prob);
                ("score", Json.Num prob);
              ])
      in
      Ok (inserts @ deletes @ reweights @ prunes @ adds)
    in
    match mutations with
    | Error msg ->
      prerr_endline msg;
      exit 1
    | Ok [] ->
      prerr_endline
        "nothing to do: give --insert/--delete/--reweight/--prune/--add-mapping";
      exit 1
    | Ok mutations -> (
      match Urm_service.Client.connect ~port () with
      | exception Unix.Unix_error (e, _, _) ->
        Format.eprintf "cannot connect to 127.0.0.1:%d: %s@." port
          (Unix.error_message e);
        exit 1
      | client ->
        let result =
          Urm_service.Client.call client ~op:"mutate"
            [ ("session", Json.Str session); ("mutations", Json.Arr mutations) ]
        in
        Urm_service.Client.close client;
        (match result with
        | Ok json -> print_endline (Json.to_string json)
        | Error (code, msg) ->
          Format.eprintf "%s: %s@." code msg;
          exit 1))
  in
  let session_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "session" ] ~doc:"Session name to mutate.")
  in
  let inserts_t =
    Arg.(
      value & opt_all string []
      & info [ "insert" ] ~docv:"REL:V1,V2,..."
          ~doc:"Insert a tuple (repeatable); values parse as int, float, \
                null, or string.")
  in
  let deletes_t =
    Arg.(
      value & opt_all string []
      & info [ "delete" ] ~docv:"REL:V1,V2,..."
          ~doc:"Delete one occurrence of a tuple (repeatable); fails when \
                absent.")
  in
  let reweights_t =
    Arg.(
      value & opt_all string []
      & info [ "reweight" ] ~docv:"ID:PROB"
          ~doc:"Set Pr(m_ID) (repeatable); the mapping-set mass is not \
                renormalised.")
  in
  let prunes_t =
    Arg.(
      value & opt_all int []
      & info [ "prune" ] ~docv:"ID" ~doc:"Remove mapping ID (repeatable).")
  in
  let adds_t =
    Arg.(
      value & opt_all string []
      & info [ "add-mapping" ] ~docv:"PROB:T.a=S.b,..."
          ~doc:"Add a mapping with the given probability and \
                target=source correspondence pairs (repeatable).")
  in
  let doc =
    "Commit a mutation batch to a session of a running urm service: tuple \
     inserts/deletes and mapping reweights/prunes/adds, applied atomically \
     in one epoch bump (flag groups apply in the order insert, delete, \
     reweight, prune, add-mapping)."
  in
  Cmd.v (Cmd.info "mutate" ~doc)
    Term.(
      const run $ port_t $ session_t $ inserts_t $ deletes_t $ reweights_t
      $ prunes_t $ adds_t)

let () =
  let doc = "probabilistic queries over uncertain schema matching (ICDE 2012)" in
  let info = Cmd.info "urm" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; match_cmd; mappings_cmd; query_cmd; plan_cmd; topk_cmd;
            threshold_cmd; approx_cmd; export_cmd; save_mappings_cmd;
            experiment_cmd; serve_cmd; shard_worker_cmd; request_cmd; mutate_cmd;
          ]))
